//! Property suite for the streaming estimators: `merge()` associativity for
//! every estimator and streaming-vs-batch equivalence against small inline
//! batch references (the full-pipeline differential comparison against
//! `probenet-core` lives in the workspace-level `tests/streaming.rs`).

use probenet_stats::{autocorrelation, Histogram, Moments};
use probenet_stream::{
    BankConfig, EstimatorBank, LogQuantileSketch, StreamRecord, StreamingLoss, StreamingWorkload,
    WindowedAcf,
};
use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;

/// A generated session: per-probe RTT in ns, `None` = lost.
fn rtts_strategy() -> impl Strategy<Value = Vec<Option<u64>>> {
    vec(option::of(1_000_000u64..500_000_000), 0..250)
}

fn record(seq: usize, rtt_ns: Option<u64>) -> StreamRecord {
    StreamRecord {
        seq: seq as u64,
        sent_at_ns: seq as u64 * 20_000_000,
        rtt_ns,
    }
}

fn bank_of(rtts: &[Option<u64>], offset: usize) -> EstimatorBank {
    let mut bank = EstimatorBank::new(BankConfig::bolot(20.0, 72, 1_000_000));
    for (i, &r) in rtts.iter().enumerate() {
        bank.push(&record(offset + i, r));
    }
    bank
}

/// Two ways of splitting `rtts` into three consecutive segments.
fn split3(rtts: &[Option<u64>], a: usize, b: usize) -> (usize, usize) {
    let n = rtts.len();
    let i = a % (n + 1);
    let j = i + b % (n + 1 - i);
    (i, j)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` for every estimator in the bank:
    /// integer state compares exactly, float accumulators to the documented
    /// reassociation ε.
    #[test]
    fn bank_merge_is_associative(rtts in rtts_strategy(), a in 0usize..1000, b in 0usize..1000) {
        let (i, j) = split3(&rtts, a, b);
        let (xa, xb, xc) = (&rtts[..i], &rtts[i..j], &rtts[j..]);

        // Left-grouped: (a ⊕ b) ⊕ c.
        let mut left = bank_of(xa, 0);
        left.merge(&bank_of(xb, i));
        left.merge(&bank_of(xc, j));

        // Right-grouped: a ⊕ (b ⊕ c).
        let mut bc = bank_of(xb, i);
        bc.merge(&bank_of(xc, j));
        let mut right = bank_of(xa, 0);
        right.merge(&bc);

        let (sl, sr) = (left.snapshot(), right.snapshot());
        // Loss metrics are pure integer state: byte-exact.
        prop_assert_eq!(
            serde_json::to_string(&sl.loss).unwrap(),
            serde_json::to_string(&sr.loss).unwrap()
        );
        // Sketch, phase grid, histograms: exact u64 addition.
        prop_assert_eq!(left.sketch(), right.sketch());
        prop_assert_eq!(left.phase().counts(), right.phase().counts());
        prop_assert_eq!(left.rtt_hist().counts(), right.rtt_hist().counts());
        prop_assert_eq!(
            left.workload().histogram().counts(),
            right.workload().histogram().counts()
        );
        prop_assert_eq!(left.workload().pairs(), right.workload().pairs());
        // ACF ring: the session is far below the 8192 window, so both
        // groupings hold the identical sample sequence.
        prop_assert_eq!(&sl.acf, &sr.acf);
        prop_assert_eq!(sl.acf_evicted, sr.acf_evicted);
        // Float accumulators: reassociation ε.
        prop_assert_eq!(left.moments().count(), right.moments().count());
        if left.moments().count() > 0 {
            prop_assert!((left.moments().mean() - right.moments().mean()).abs() <= 1e-9);
        }
        prop_assert!(
            (left.workload().mean_workload_bytes() - right.workload().mean_workload_bytes()).abs()
                <= 1e-9
        );
    }

    /// Merging consecutive segments reproduces a single serial fold.
    #[test]
    fn bank_merge_matches_serial_fold(rtts in rtts_strategy(), a in 0usize..1000, b in 0usize..1000) {
        let (i, j) = split3(&rtts, a, b);
        let whole = bank_of(&rtts, 0);
        let mut merged = bank_of(&rtts[..i], 0);
        merged.merge(&bank_of(&rtts[i..j], i));
        merged.merge(&bank_of(&rtts[j..], j));
        let (sm, sw) = (merged.snapshot(), whole.snapshot());
        prop_assert_eq!(
            serde_json::to_string(&sm.loss).unwrap(),
            serde_json::to_string(&sw.loss).unwrap()
        );
        prop_assert_eq!(merged.sketch(), whole.sketch());
        prop_assert_eq!(merged.phase().counts(), whole.phase().counts());
        prop_assert_eq!(
            merged.workload().histogram().counts(),
            whole.workload().histogram().counts()
        );
        prop_assert_eq!(&sm.acf, &sw.acf);
        prop_assert!(
            (merged.workload().mean_workload_bytes() - whole.workload().mean_workload_bytes())
                .abs()
                <= 1e-9
        );
        if whole.moments().count() > 0 {
            prop_assert!((merged.moments().mean() - whole.moments().mean()).abs() <= 1e-9);
        }
    }

    /// StreamingLoss against an inline batch reference computed from the
    /// flag vector (counts, conditionals, run lengths).
    #[test]
    fn streaming_loss_matches_inline_batch(rtts in rtts_strategy()) {
        let flags: Vec<bool> = rtts.iter().map(|r| r.is_none()).collect();
        let mut s = StreamingLoss::new();
        for &f in &flags {
            s.push(f);
        }
        let snap = s.snapshot();

        let lost = flags.iter().filter(|&&f| f).count();
        prop_assert_eq!(snap.sent, flags.len());
        prop_assert_eq!(snap.lost, lost);

        // Run lengths: maximal runs of consecutive losses.
        let mut runs: Vec<usize> = Vec::new();
        let mut cur = 0usize;
        for &f in &flags {
            if f {
                cur += 1;
            } else if cur > 0 {
                runs.push(cur);
                cur = 0;
            }
        }
        if cur > 0 {
            runs.push(cur);
        }
        let mut hist = vec![0usize; runs.iter().copied().max().unwrap_or(0)];
        for r in &runs {
            hist[r - 1] += 1;
        }
        prop_assert_eq!(&snap.run_lengths, &hist);

        // clp = P(loss_{n+1} | loss_n) over consecutive pairs.
        let n11 = flags.windows(2).filter(|w| w[0] && w[1]).count();
        let n10 = flags.windows(2).filter(|w| w[0] && !w[1]).count();
        match snap.clp {
            Some(clp) => {
                prop_assert!(n10 + n11 > 0);
                prop_assert_eq!(clp, n11 as f64 / (n10 + n11) as f64);
            }
            None => prop_assert_eq!(n10 + n11, 0),
        }
        if !runs.is_empty() {
            prop_assert_eq!(snap.plg_measured, Some(lost as f64 / runs.len() as f64));
        }
    }

    /// The sketch brackets the exact nearest-rank quantile from below,
    /// within its documented 2⁻⁷ relative error.
    #[test]
    fn sketch_brackets_exact_quantiles(
        values in vec(1u64..2_000_000_000, 1..300),
        qs in vec(0.0f64..1.0, 1..8),
    ) {
        let mut sketch = LogQuantileSketch::new();
        for &v in &values {
            sketch.push(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for &q in &qs {
            let rank = if q == 0.0 {
                1
            } else {
                ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len())
            };
            let truth = sorted[rank - 1] as f64;
            let approx = sketch.quantile(q).expect("non-empty") as f64;
            prop_assert!(approx <= truth, "q {} approx {} truth {}", q, approx, truth);
            prop_assert!(
                truth - approx <= truth * LogQuantileSketch::RELATIVE_ERROR,
                "q {} approx {} truth {}",
                q,
                approx,
                truth
            );
        }
    }

    /// StreamingWorkload against an inline batch fold of the interarrival
    /// series (identical binning, identical summation order).
    #[test]
    fn streaming_workload_matches_inline_batch(rtts in rtts_strategy()) {
        let mut w = StreamingWorkload::new(20.0, 72, 1_000_000, 128_000.0, 100.0);
        for &r in &rtts {
            w.push(r);
        }
        let g: Vec<f64> = rtts
            .windows(2)
            .filter_map(|p| match (p[0], p[1]) {
                (Some(a), Some(b)) => Some((b as f64 - a as f64) / 1e6 + 20.0),
                _ => None,
            })
            .collect();
        // Batch layout for max_ms = 100 at 1 ms clock resolution: 1 ms bins.
        let mut hist = Histogram::new(0.0, 100.0, 100);
        let mut b_sum = 0.0f64;
        for &g_ms in &g {
            hist.add(g_ms);
            b_sum += ((128_000.0 * g_ms / 1e3 - 576.0) / 8.0).max(0.0);
        }
        prop_assert_eq!(w.pairs() as usize, g.len());
        prop_assert_eq!(w.histogram().counts(), hist.counts());
        if !g.is_empty() {
            // Same additions in the same order: bit-identical.
            prop_assert_eq!(w.mean_workload_bytes(), b_sum / g.len() as f64);
        }
    }

    /// The windowed ACF equals the batch ACF of the ring contents: the full
    /// series below capacity, its tail above.
    #[test]
    fn windowed_acf_matches_batch_of_tail(
        values in vec(1_000_000u64..500_000_000, 0..200),
        window in 2usize..64,
    ) {
        let mut acf = WindowedAcf::new(window);
        let ms: Vec<f64> = values.iter().map(|&v| v as f64 / 1e6).collect();
        for &x in &ms {
            acf.push(x);
        }
        let tail: &[f64] = if ms.len() > window { &ms[ms.len() - window..] } else { &ms };
        if tail.is_empty() {
            prop_assert!(acf.snapshot(20).is_empty());
        } else {
            let max_lag = 20.min(tail.len() - 1);
            prop_assert_eq!(acf.snapshot(20), autocorrelation(tail, max_lag));
        }
        prop_assert_eq!(acf.evicted() as usize, ms.len().saturating_sub(window));
    }

    /// Moments fold identically to the batch slice constructor.
    #[test]
    fn moments_match_batch_fold(values in vec(1_000_000u64..500_000_000, 1..300)) {
        let ms: Vec<f64> = values.iter().map(|&v| v as f64 / 1e6).collect();
        let mut streaming = Moments::new();
        for &x in &ms {
            streaming.push(x);
        }
        let batch = Moments::from_slice(&ms);
        prop_assert_eq!(streaming.count(), batch.count());
        prop_assert_eq!(streaming.mean(), batch.mean());
        prop_assert_eq!(streaming.std_dev(), batch.std_dev());
    }
}

// ---------------------------------------------------------------------------
// Snapshot wire format: round-trip and merge-commutation properties. The
// codec itself lives in `probenet_wire::snapshot` (a dev-only dependency
// here); these properties pin it against the live estimator types.
// ---------------------------------------------------------------------------

use probenet_stream::SessionKey;
use probenet_wire::snapshot::SessionFrame;

fn frame_of(rtts: &[Option<u64>], offset: usize, first_seq: u64) -> SessionFrame {
    SessionFrame {
        key: SessionKey::new("prop/session", 20, 1993),
        first_seq,
        records: rtts.len() as u64,
        dropped: 0,
        bank: bank_of(rtts, offset),
        interim: Vec::new(),
        hops: Vec::new(),
        extensions: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `decode(encode(frame))` is the identity, bit-exactly: every
    /// estimator's wire state (float accumulators compared through
    /// `to_bits`-faithful `PartialEq`), a byte-identical re-encode, and an
    /// identical re-rendered snapshot.
    #[test]
    fn frame_round_trip_is_bit_exact(rtts in rtts_strategy()) {
        let frame = frame_of(&rtts, 0, 0);
        let bytes = frame.encode();
        let (decoded, used) = SessionFrame::decode(&bytes).expect("round-trip decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(&decoded.key, &frame.key);
        prop_assert_eq!(decoded.records, frame.records);
        prop_assert_eq!(decoded.dropped, frame.dropped);
        prop_assert_eq!(decoded.bank.wire_state(), frame.bank.wire_state());
        prop_assert_eq!(decoded.encode(), bytes);
        prop_assert_eq!(
            serde_json::to_string(&decoded.bank.snapshot()).unwrap(),
            serde_json::to_string(&frame.bank.snapshot()).unwrap()
        );
    }

    /// Merging two banks that each made a wire round-trip is bit-identical
    /// to merging the originals in memory — the fleet daemon's fold adds
    /// no error beyond `EstimatorBank::merge` itself.
    #[test]
    fn merge_commutes_with_the_codec(rtts in rtts_strategy(), cut in 0usize..1000) {
        let i = cut % (rtts.len() + 1);
        let (da, _) = SessionFrame::decode(&frame_of(&rtts[..i], 0, 0).encode())
            .expect("left shard decodes");
        let (db, _) = SessionFrame::decode(&frame_of(&rtts[i..], i, i as u64).encode())
            .expect("right shard decodes");
        let mut wire = da.bank;
        wire.merge(&db.bank);

        let mut mem = bank_of(&rtts[..i], 0);
        mem.merge(&bank_of(&rtts[i..], i));

        prop_assert_eq!(wire.wire_state(), mem.wire_state());
        prop_assert_eq!(
            serde_json::to_string(&wire.snapshot()).unwrap(),
            serde_json::to_string(&mem.snapshot()).unwrap()
        );
    }

    /// Every per-estimator wire-state constructor inverts its accessor
    /// exactly — rebuilt estimators report the same state they were built
    /// from (the frame codec is a pure transport on top of these).
    #[test]
    fn estimator_wire_states_round_trip(rtts in rtts_strategy()) {
        // Loss.
        let mut loss = StreamingLoss::new();
        for r in &rtts {
            loss.push(r.is_none());
        }
        let ls = loss.wire_state();
        let loss2 = StreamingLoss::from_wire_state(ls.clone()).expect("valid loss state");
        prop_assert_eq!(loss2.wire_state(), ls);
        prop_assert_eq!(
            serde_json::to_string(&loss2.snapshot()).unwrap(),
            serde_json::to_string(&loss.snapshot()).unwrap()
        );

        let delivered: Vec<u64> = rtts.iter().filter_map(|&r| r).collect();

        // Sketch.
        let mut sketch = LogQuantileSketch::new();
        for &v in &delivered {
            sketch.push(v);
        }
        let sketch2 = LogQuantileSketch::from_counts(sketch.counts().to_vec())
            .expect("valid sketch counts");
        prop_assert_eq!(&sketch2, &sketch);

        // ACF ring.
        let mut acf = WindowedAcf::new(64);
        for &v in &delivered {
            acf.push(v as f64 / 1e6);
        }
        let acf2 = WindowedAcf::from_samples(acf.window(), acf.evicted(), acf.samples().collect())
            .expect("valid acf samples");
        prop_assert_eq!(acf2.samples().collect::<Vec<_>>(), acf.samples().collect::<Vec<_>>());
        prop_assert_eq!(acf2.evicted(), acf.evicted());
        prop_assert_eq!(acf2.snapshot(20), acf.snapshot(20));

        // Workload (Lindley recursion state).
        let mut w = StreamingWorkload::new(20.0, 72, 1_000_000, 128_000.0, 100.0);
        for &r in &rtts {
            w.push(r);
        }
        let ws = w.wire_state();
        let w2 = StreamingWorkload::from_wire_state(ws.clone()).expect("valid workload state");
        prop_assert_eq!(w2.wire_state(), ws);
        prop_assert_eq!(w2.mean_workload_bytes().to_bits(), w.mean_workload_bytes().to_bits());

        // Moments.
        let mut m = Moments::new();
        for &v in &delivered {
            m.push(v as f64 / 1e6);
        }
        let m2 = Moments::from_state(m.state()).expect("valid moments state");
        prop_assert_eq!(m2.state(), m.state());

        // The whole bank, through `BankWireState`.
        let bank = bank_of(&rtts, 0);
        let state = bank.wire_state();
        let bank2 = EstimatorBank::from_wire_state(state.clone()).expect("valid bank state");
        prop_assert_eq!(bank2.wire_state(), state);
    }
}
