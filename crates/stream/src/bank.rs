//! The per-session estimator bank: every streaming estimator the collector
//! maintains for one probe session, fed record-by-record and summarized as
//! one JSON-ready snapshot.

use crate::acf::WindowedAcf;
use crate::fnv::fnv1a_u64s;
use crate::lindley::{StreamingWorkload, WorkloadSnapshot};
use crate::loss::{LossSnapshot, StreamingLoss};
use crate::phase::{PhaseDensity, PhaseSnapshot};
use crate::quantile::LogQuantileSketch;
use crate::record::StreamRecord;
use probenet_stats::{Histogram, Moments};
use serde::{Deserialize, Serialize};

/// Layout and model parameters of an [`EstimatorBank`]. Two banks merge only
/// if their configs are identical (same bin layouts, same μ).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankConfig {
    /// Probe interval δ in ms.
    pub delta_ms: f64,
    /// Probe wire size in bytes (the paper's `P`, as bytes).
    pub wire_bytes: u32,
    /// Receiver clock resolution in ns (drives workload histogram binning).
    pub clock_resolution_ns: u64,
    /// Assumed bottleneck rate μ in bits/s.
    pub mu_bps: f64,
    /// Workload/interarrival histogram upper edge (ms).
    pub workload_max_ms: f64,
    /// RTT histogram lower edge (ms).
    pub rtt_lo_ms: f64,
    /// RTT histogram upper edge (ms).
    pub rtt_hi_ms: f64,
    /// RTT histogram bin count.
    pub rtt_bins: usize,
    /// ACF ring capacity (sessions shorter than this reproduce the batch
    /// ACF bit-for-bit).
    pub acf_window: usize,
    /// Maximum ACF lag reported in snapshots.
    pub acf_max_lag: usize,
    /// Phase grid lower edge (ms).
    pub phase_lo_ms: f64,
    /// Phase grid upper edge (ms).
    pub phase_hi_ms: f64,
    /// Phase grid bins per axis.
    pub phase_bins: usize,
}

impl BankConfig {
    /// The defaults used throughout this repo's Bolot scenarios: μ = 128
    /// kb/s, RTT range `[0, 2000)` ms × 400 bins, workload histogram up to
    /// `max(4δ, 100)` ms, an 8192-sample ACF window reported to lag 20, and
    /// a 64×64 phase grid over the RTT range.
    pub fn bolot(delta_ms: f64, wire_bytes: u32, clock_resolution_ns: u64) -> Self {
        BankConfig {
            delta_ms,
            wire_bytes,
            clock_resolution_ns,
            mu_bps: 128_000.0,
            workload_max_ms: (4.0 * delta_ms).max(100.0),
            rtt_lo_ms: 0.0,
            rtt_hi_ms: 2000.0,
            rtt_bins: 400,
            acf_window: 8192,
            acf_max_lag: 20,
            phase_lo_ms: 0.0,
            phase_hi_ms: 2000.0,
            phase_bins: 64,
        }
    }
}

/// All streaming estimators for one session, updated in O(1) per record.
#[derive(Debug, Clone)]
pub struct EstimatorBank {
    config: BankConfig,
    loss: StreamingLoss,
    moments: Moments,
    rtt_hist: Histogram,
    sketch: LogQuantileSketch,
    acf: WindowedAcf,
    workload: StreamingWorkload,
    phase: PhaseDensity,
}

/// Delay summary of the delivered probes (absent when none arrived, so the
/// snapshot never carries NaN/∞ — which the vendored JSON writer rejects).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RttSummary {
    /// Mean RTT (ms).
    pub mean_ms: f64,
    /// Sample standard deviation (ms).
    pub std_dev_ms: f64,
    /// Minimum RTT (ms).
    pub min_ms: f64,
    /// Maximum RTT (ms).
    pub max_ms: f64,
    /// Median from the quantile sketch (ms, relative error ≤ 2⁻⁷).
    pub p50_ms: f64,
    /// 90th percentile from the sketch (ms).
    pub p90_ms: f64,
    /// 99th percentile from the sketch (ms).
    pub p99_ms: f64,
    /// FNV-1a digest of the RTT histogram bin counts.
    pub hist_fnv1a: String,
}

/// One session's full streaming summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BankSnapshot {
    /// Probes pushed.
    pub sent: u64,
    /// Probes delivered.
    pub received: u64,
    /// Probes lost.
    pub lost: u64,
    /// Loss-process metrics (batch-exact).
    pub loss: LossSnapshot,
    /// Delay summary, `None` when nothing was delivered.
    pub rtt: Option<RttSummary>,
    /// ACF of the (windowed) delivered-RTT series up to the configured lag.
    pub acf: Vec<f64>,
    /// Delivered samples the ACF ring has evicted (0 ⇒ the ACF is exactly
    /// the batch ACF of the full series).
    pub acf_evicted: u64,
    /// Interarrival/workload summary.
    pub workload: WorkloadSnapshot,
    /// Phase-plot density summary.
    pub phase: PhaseSnapshot,
}

impl EstimatorBank {
    /// A fresh bank with the given layout.
    pub fn new(config: BankConfig) -> Self {
        let workload = StreamingWorkload::new(
            config.delta_ms,
            config.wire_bytes,
            config.clock_resolution_ns,
            config.mu_bps,
            config.workload_max_ms,
        );
        EstimatorBank {
            loss: StreamingLoss::new(),
            moments: Moments::new(),
            rtt_hist: Histogram::new(config.rtt_lo_ms, config.rtt_hi_ms, config.rtt_bins),
            sketch: LogQuantileSketch::new(),
            acf: WindowedAcf::new(config.acf_window),
            phase: PhaseDensity::new(config.phase_lo_ms, config.phase_hi_ms, config.phase_bins),
            workload,
            config,
        }
    }

    /// The bank's configuration.
    pub fn config(&self) -> &BankConfig {
        &self.config
    }

    /// Fold one record (records must arrive in sequence order).
    pub fn push(&mut self, r: &StreamRecord) {
        self.loss.push(r.rtt_ns.is_none());
        if let Some(ns) = r.rtt_ns {
            let ms = ns as f64 / 1e6;
            self.moments.push(ms);
            self.rtt_hist.add(ms);
            self.sketch.push(ns);
            self.acf.push(ms);
        }
        self.workload.push(r.rtt_ns);
        self.phase.push(r.rtt_ns);
    }

    /// Fold `other` — the estimators of the records immediately following
    /// this bank's — into `self`. Integer state merges exactly; float
    /// accumulators (moments, workload sum) to reassociation ε.
    ///
    /// # Panics
    /// Panics if the configs differ.
    pub fn merge(&mut self, other: &EstimatorBank) {
        assert!(self.config == other.config, "bank configs differ");
        self.loss.merge(&other.loss);
        self.moments.merge(&other.moments);
        self.rtt_hist.merge(&other.rtt_hist);
        self.sketch.merge(&other.sketch);
        self.acf.merge(&other.acf);
        self.workload.merge(&other.workload);
        self.phase.merge(&other.phase);
    }

    /// Probes pushed so far.
    pub fn sent(&self) -> u64 {
        self.loss.sent()
    }

    /// The loss estimator (for differential tests).
    pub fn loss(&self) -> &StreamingLoss {
        &self.loss
    }

    /// The delivered-RTT moments (ms).
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// The delivered-RTT histogram (ms).
    pub fn rtt_hist(&self) -> &Histogram {
        &self.rtt_hist
    }

    /// The delivered-RTT quantile sketch (ns).
    pub fn sketch(&self) -> &LogQuantileSketch {
        &self.sketch
    }

    /// The workload estimator.
    pub fn workload(&self) -> &StreamingWorkload {
        &self.workload
    }

    /// The phase-density grid.
    pub fn phase(&self) -> &PhaseDensity {
        &self.phase
    }

    /// The windowed ACF ring.
    pub fn acf(&self) -> &WindowedAcf {
        &self.acf
    }

    /// Current summary of every estimator.
    pub fn snapshot(&self) -> BankSnapshot {
        let received = self.moments.count();
        let rtt = if received == 0 {
            None
        } else {
            Some(RttSummary {
                mean_ms: self.moments.mean(),
                std_dev_ms: self.moments.std_dev(),
                min_ms: self.moments.min(),
                max_ms: self.moments.max(),
                p50_ms: self.sketch.quantile(0.5).expect("non-empty") as f64 / 1e6,
                p90_ms: self.sketch.quantile(0.9).expect("non-empty") as f64 / 1e6,
                p99_ms: self.sketch.quantile(0.99).expect("non-empty") as f64 / 1e6,
                hist_fnv1a: fnv1a_u64s(self.rtt_hist.counts().iter().copied()),
            })
        };
        BankSnapshot {
            sent: self.loss.sent(),
            received,
            lost: self.loss.lost(),
            loss: self.loss.snapshot(),
            rtt,
            acf: self.acf.snapshot(self.config.acf_max_lag),
            acf_evicted: self.acf.evicted(),
            workload: self.workload.snapshot(),
            phase: self.phase.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, rtt_ms: Option<f64>) -> StreamRecord {
        StreamRecord {
            seq,
            sent_at_ns: seq * 20_000_000,
            rtt_ns: rtt_ms.map(|ms| (ms * 1e6) as u64),
        }
    }

    #[test]
    fn empty_bank_snapshot_is_json_safe() {
        let bank = EstimatorBank::new(BankConfig::bolot(20.0, 72, 0));
        let snap = bank.snapshot();
        assert!(snap.rtt.is_none());
        assert!(snap.acf.is_empty());
        // The vendored writer errors on NaN/∞; this must serialize.
        serde_json::to_string(&snap).expect("JSON-safe");
    }

    #[test]
    fn counts_line_up() {
        let mut bank = EstimatorBank::new(BankConfig::bolot(20.0, 72, 0));
        for i in 0..50 {
            bank.push(&record(
                i,
                if i % 5 == 0 {
                    None
                } else {
                    Some(140.0 + i as f64)
                },
            ));
        }
        let snap = bank.snapshot();
        assert_eq!(snap.sent, 50);
        assert_eq!(snap.lost, 10);
        assert_eq!(snap.received, 40);
        assert_eq!(snap.loss.sent, 50);
        let rtt = snap.rtt.expect("delivered probes");
        assert!(rtt.min_ms >= 140.0 && rtt.max_ms < 200.0);
    }

    #[test]
    fn merge_matches_sequential_for_integer_state() {
        let records: Vec<StreamRecord> = (0..300)
            .map(|i| {
                record(
                    i,
                    if i % 9 == 2 {
                        None
                    } else {
                        Some(100.0 + (i as f64 * 0.7).sin() * 40.0)
                    },
                )
            })
            .collect();
        let mut whole = EstimatorBank::new(BankConfig::bolot(20.0, 72, 0));
        for r in &records {
            whole.push(r);
        }
        let mut a = EstimatorBank::new(BankConfig::bolot(20.0, 72, 0));
        let mut b = EstimatorBank::new(BankConfig::bolot(20.0, 72, 0));
        for r in &records[..137] {
            a.push(r);
        }
        for r in &records[137..] {
            b.push(r);
        }
        a.merge(&b);
        let (sa, sw) = (a.snapshot(), whole.snapshot());
        assert_eq!(
            serde_json::to_string(&sa.loss).unwrap(),
            serde_json::to_string(&sw.loss).unwrap()
        );
        assert_eq!(sa.phase.grid_fnv1a, sw.phase.grid_fnv1a);
        assert_eq!(sa.workload.hist_fnv1a, sw.workload.hist_fnv1a);
        assert_eq!(a.sketch(), whole.sketch());
        assert_eq!(sa.acf, sw.acf);
        assert!((sa.rtt.unwrap().mean_ms - sw.rtt.unwrap().mean_ms).abs() < 1e-9);
    }
}
