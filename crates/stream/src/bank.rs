//! The per-session estimator bank: every streaming estimator the collector
//! maintains for one probe session, fed record-by-record and summarized as
//! one JSON-ready snapshot.

use crate::acf::WindowedAcf;
use crate::fnv::fnv1a_u64s;
use crate::lindley::{StreamingWorkload, WorkloadSnapshot, WorkloadWireState};
use crate::loss::{LossSnapshot, LossWireState, StreamingLoss};
use crate::phase::{PhaseDensity, PhaseSnapshot, PhaseWireState};
use crate::quantile::LogQuantileSketch;
use crate::record::StreamRecord;
use probenet_stats::{Histogram, Moments, MomentsState};
use serde::{Deserialize, Serialize};

/// Layout and model parameters of an [`EstimatorBank`]. Two banks merge only
/// if their configs are identical (same bin layouts, same μ).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BankConfig {
    /// Probe interval δ in ms.
    pub delta_ms: f64,
    /// Probe wire size in bytes (the paper's `P`, as bytes).
    pub wire_bytes: u32,
    /// Receiver clock resolution in ns (drives workload histogram binning).
    pub clock_resolution_ns: u64,
    /// Assumed bottleneck rate μ in bits/s.
    pub mu_bps: f64,
    /// Workload/interarrival histogram upper edge (ms).
    pub workload_max_ms: f64,
    /// RTT histogram lower edge (ms).
    pub rtt_lo_ms: f64,
    /// RTT histogram upper edge (ms).
    pub rtt_hi_ms: f64,
    /// RTT histogram bin count.
    pub rtt_bins: usize,
    /// ACF ring capacity (sessions shorter than this reproduce the batch
    /// ACF bit-for-bit).
    pub acf_window: usize,
    /// Maximum ACF lag reported in snapshots.
    pub acf_max_lag: usize,
    /// Phase grid lower edge (ms).
    pub phase_lo_ms: f64,
    /// Phase grid upper edge (ms).
    pub phase_hi_ms: f64,
    /// Phase grid bins per axis.
    pub phase_bins: usize,
}

/// The complete raw state of an [`EstimatorBank`], as per-estimator wire
/// states plus the shared config — the in-memory bridge the snapshot wire
/// codec (`probenet-wire`) encodes and decodes. `from_wire_state(wire_state())`
/// reproduces the bank bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct BankWireState {
    /// Layout and model parameters (drives every derived layout below).
    pub config: BankConfig,
    /// Loss-process segment summary.
    pub loss: LossWireState,
    /// Delivered-RTT moments accumulator (ms).
    pub moments: MomentsState,
    /// Delivered-RTT histogram bin counts (layout derived from config).
    pub rtt_counts: Vec<u64>,
    /// RTT histogram underflow gutter.
    pub rtt_underflow: u64,
    /// RTT histogram overflow gutter.
    pub rtt_overflow: u64,
    /// Quantile sketch bucket counts (ns domain).
    pub sketch_counts: Vec<u64>,
    /// Samples evicted from the ACF ring.
    pub acf_evicted: u64,
    /// ACF ring contents, oldest first (ms).
    pub acf_samples: Vec<f64>,
    /// Workload estimator state (params duplicate the config).
    pub workload: WorkloadWireState,
    /// Phase-density grid state (layout duplicates the config).
    pub phase: PhaseWireState,
}

impl BankConfig {
    /// The workload histogram bin count this config derives — exactly the
    /// [`StreamingWorkload::new`] layout rule, exposed so decoders can
    /// verify a claimed bin count without allocating it first.
    pub fn workload_bins(&self) -> usize {
        let resolution_ms = self.clock_resolution_ns as f64 / 1e6;
        let bin = resolution_ms.max(0.5);
        ((self.workload_max_ms / bin).ceil() as usize).max(10)
    }

    /// Check every constructor precondition the bank's estimators assert,
    /// returning `Err` instead of panicking — the total-decoder gate for
    /// configs arriving off the wire.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !self.delta_ms.is_finite() {
            return Err("config: bad delta");
        }
        if !(self.mu_bps.is_finite() && self.mu_bps > 0.0) {
            return Err("config: bad mu");
        }
        if !(self.workload_max_ms.is_finite() && self.workload_max_ms > 0.0) {
            return Err("config: bad workload range");
        }
        if !(self.rtt_lo_ms.is_finite()
            && self.rtt_hi_ms.is_finite()
            && self.rtt_lo_ms < self.rtt_hi_ms)
        {
            return Err("config: bad rtt range");
        }
        if self.rtt_bins == 0 {
            return Err("config: zero rtt bins");
        }
        if self.acf_window < 2 {
            return Err("config: acf window below two");
        }
        if !(self.phase_lo_ms.is_finite()
            && self.phase_hi_ms.is_finite()
            && self.phase_lo_ms < self.phase_hi_ms)
        {
            return Err("config: bad phase range");
        }
        if self.phase_bins == 0 {
            return Err("config: zero phase bins");
        }
        Ok(())
    }
}

impl BankConfig {
    /// The defaults used throughout this repo's Bolot scenarios: μ = 128
    /// kb/s, RTT range `[0, 2000)` ms × 400 bins, workload histogram up to
    /// `max(4δ, 100)` ms, an 8192-sample ACF window reported to lag 20, and
    /// a 64×64 phase grid over the RTT range.
    pub fn bolot(delta_ms: f64, wire_bytes: u32, clock_resolution_ns: u64) -> Self {
        BankConfig {
            delta_ms,
            wire_bytes,
            clock_resolution_ns,
            mu_bps: 128_000.0,
            workload_max_ms: (4.0 * delta_ms).max(100.0),
            rtt_lo_ms: 0.0,
            rtt_hi_ms: 2000.0,
            rtt_bins: 400,
            acf_window: 8192,
            acf_max_lag: 20,
            phase_lo_ms: 0.0,
            phase_hi_ms: 2000.0,
            phase_bins: 64,
        }
    }
}

/// All streaming estimators for one session, updated in O(1) per record.
#[derive(Debug, Clone)]
pub struct EstimatorBank {
    config: BankConfig,
    loss: StreamingLoss,
    moments: Moments,
    rtt_hist: Histogram,
    sketch: LogQuantileSketch,
    acf: WindowedAcf,
    workload: StreamingWorkload,
    phase: PhaseDensity,
}

/// Delay summary of the delivered probes (absent when none arrived, so the
/// snapshot never carries NaN/∞ — which the vendored JSON writer rejects).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RttSummary {
    /// Mean RTT (ms).
    pub mean_ms: f64,
    /// Sample standard deviation (ms).
    pub std_dev_ms: f64,
    /// Minimum RTT (ms).
    pub min_ms: f64,
    /// Maximum RTT (ms).
    pub max_ms: f64,
    /// Median from the quantile sketch (ms, relative error ≤ 2⁻⁷).
    pub p50_ms: f64,
    /// 90th percentile from the sketch (ms).
    pub p90_ms: f64,
    /// 99th percentile from the sketch (ms).
    pub p99_ms: f64,
    /// FNV-1a digest of the RTT histogram bin counts.
    pub hist_fnv1a: String,
}

/// One session's full streaming summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BankSnapshot {
    /// Probes pushed.
    pub sent: u64,
    /// Probes delivered.
    pub received: u64,
    /// Probes lost.
    pub lost: u64,
    /// Loss-process metrics (batch-exact).
    pub loss: LossSnapshot,
    /// Delay summary, `None` when nothing was delivered.
    pub rtt: Option<RttSummary>,
    /// ACF of the (windowed) delivered-RTT series up to the configured lag.
    pub acf: Vec<f64>,
    /// Delivered samples the ACF ring has evicted (0 ⇒ the ACF is exactly
    /// the batch ACF of the full series).
    pub acf_evicted: u64,
    /// Interarrival/workload summary.
    pub workload: WorkloadSnapshot,
    /// Phase-plot density summary.
    pub phase: PhaseSnapshot,
}

impl EstimatorBank {
    /// A fresh bank with the given layout.
    pub fn new(config: BankConfig) -> Self {
        let workload = StreamingWorkload::new(
            config.delta_ms,
            config.wire_bytes,
            config.clock_resolution_ns,
            config.mu_bps,
            config.workload_max_ms,
        );
        EstimatorBank {
            loss: StreamingLoss::new(),
            moments: Moments::new(),
            rtt_hist: Histogram::new(config.rtt_lo_ms, config.rtt_hi_ms, config.rtt_bins),
            sketch: LogQuantileSketch::new(),
            acf: WindowedAcf::new(config.acf_window),
            phase: PhaseDensity::new(config.phase_lo_ms, config.phase_hi_ms, config.phase_bins),
            workload,
            config,
        }
    }

    /// The bank's configuration.
    pub fn config(&self) -> &BankConfig {
        &self.config
    }

    /// Fold one record (records must arrive in sequence order).
    pub fn push(&mut self, r: &StreamRecord) {
        self.loss.push(r.rtt_ns.is_none());
        if let Some(ns) = r.rtt_ns {
            let ms = ns as f64 / 1e6;
            self.moments.push(ms);
            self.rtt_hist.add(ms);
            self.sketch.push(ns);
            self.acf.push(ms);
        }
        self.workload.push(r.rtt_ns);
        self.phase.push(r.rtt_ns);
    }

    /// Fold `other` — the estimators of the records immediately following
    /// this bank's — into `self`. Integer state merges exactly; float
    /// accumulators (moments, workload sum) to reassociation ε.
    ///
    /// # Panics
    /// Panics if the configs differ.
    pub fn merge(&mut self, other: &EstimatorBank) {
        assert!(self.config == other.config, "bank configs differ");
        self.loss.merge(&other.loss);
        self.moments.merge(&other.moments);
        self.rtt_hist.merge(&other.rtt_hist);
        self.sketch.merge(&other.sketch);
        self.acf.merge(&other.acf);
        self.workload.merge(&other.workload);
        self.phase.merge(&other.phase);
    }

    /// Probes pushed so far.
    pub fn sent(&self) -> u64 {
        self.loss.sent()
    }

    /// The loss estimator (for differential tests).
    pub fn loss(&self) -> &StreamingLoss {
        &self.loss
    }

    /// The delivered-RTT moments (ms).
    pub fn moments(&self) -> &Moments {
        &self.moments
    }

    /// The delivered-RTT histogram (ms).
    pub fn rtt_hist(&self) -> &Histogram {
        &self.rtt_hist
    }

    /// The delivered-RTT quantile sketch (ns).
    pub fn sketch(&self) -> &LogQuantileSketch {
        &self.sketch
    }

    /// The workload estimator.
    pub fn workload(&self) -> &StreamingWorkload {
        &self.workload
    }

    /// The phase-density grid.
    pub fn phase(&self) -> &PhaseDensity {
        &self.phase
    }

    /// The windowed ACF ring.
    pub fn acf(&self) -> &WindowedAcf {
        &self.acf
    }

    /// The bank's complete raw state, for serialization.
    pub fn wire_state(&self) -> BankWireState {
        BankWireState {
            config: self.config.clone(),
            loss: self.loss.wire_state(),
            moments: self.moments.state(),
            rtt_counts: self.rtt_hist.counts().to_vec(),
            rtt_underflow: self.rtt_hist.underflow(),
            rtt_overflow: self.rtt_hist.overflow(),
            sketch_counts: self.sketch.counts().to_vec(),
            acf_evicted: self.acf.evicted(),
            acf_samples: self.acf.samples().collect(),
            workload: self.workload.wire_state(),
            phase: self.phase.wire_state(),
        }
    }

    /// Rebuild a bank from a previously captured [`BankWireState`].
    ///
    /// Total, and deliberately strict: beyond each estimator's own checks,
    /// the layouts duplicated in the workload/phase states must equal the
    /// config-derived ones (otherwise a later `merge` with a freshly built
    /// bank would panic), and the delivered-probe count must agree across
    /// every estimator fed from it — which is what makes a decoded bank's
    /// `snapshot()` safe (the sketch is non-empty whenever the moments
    /// are, so its `quantile()` lookups cannot fail).
    pub fn from_wire_state(s: BankWireState) -> Result<Self, &'static str> {
        s.config.validate()?;
        let config = s.config;

        // Workload params are fully derived from the config; a frame that
        // disagrees with its own config is corrupt.
        let w = &s.workload;
        if w.delta_ms != config.delta_ms
            || w.mu_bps != config.mu_bps
            || w.p_bits != f64::from(config.wire_bytes) * 8.0
            || w.hist_hi != config.workload_max_ms
            || w.hist_counts.len() != config.workload_bins()
        {
            return Err("bank: workload state disagrees with config");
        }
        let p = &s.phase;
        if p.lo != config.phase_lo_ms || p.hi != config.phase_hi_ms || p.bins != config.phase_bins {
            return Err("bank: phase state disagrees with config");
        }
        if s.rtt_counts.len() != config.rtt_bins {
            return Err("bank: rtt histogram shape mismatch");
        }

        // The same records feed every estimator, so their boundary views
        // must agree: the workload and phase trackers hold the identical
        // first/last RTTs, and the loss flags are their loss indicators.
        if s.workload.first != s.phase.first || s.workload.last != s.phase.last {
            return Err("bank: boundary records disagree");
        }
        if s.workload.first.map(|r| r.is_none()) != s.loss.first
            || s.workload.last.map(|r| r.is_none()) != s.loss.last
        {
            return Err("bank: boundary records disagree with loss flags");
        }
        if s.workload.pairs != s.phase.pairs {
            return Err("bank: pair counts disagree");
        }

        let loss = StreamingLoss::from_wire_state(s.loss)?;
        let moments = Moments::from_state(s.moments)?;
        let rtt_hist = Histogram::from_parts(
            config.rtt_lo_ms,
            config.rtt_hi_ms,
            s.rtt_counts,
            s.rtt_underflow,
            s.rtt_overflow,
        )?;
        let sketch = LogQuantileSketch::from_counts(s.sketch_counts)?;
        let acf = WindowedAcf::from_samples(config.acf_window, s.acf_evicted, s.acf_samples)?;
        let workload = StreamingWorkload::from_wire_state(s.workload)?;
        let phase = PhaseDensity::from_wire_state(s.phase)?;

        // Every delivered probe reaches the moments, histogram, sketch and
        // ACF ring exactly once.
        let received = loss.sent() - loss.lost();
        if moments.count() != received || sketch.total() != received {
            return Err("bank: delivered-count mismatch");
        }
        let mut hist_offered = rtt_hist.underflow().checked_add(rtt_hist.overflow());
        for &c in rtt_hist.counts() {
            hist_offered = hist_offered.and_then(|t| t.checked_add(c));
        }
        if hist_offered.ok_or("bank: rtt count overflow")? != received {
            return Err("bank: delivered-count mismatch");
        }
        let acf_seen = acf
            .evicted()
            .checked_add(acf.len() as u64)
            .ok_or("bank: acf count overflow")?;
        if acf_seen != received {
            return Err("bank: delivered-count mismatch");
        }

        Ok(EstimatorBank {
            config,
            loss,
            moments,
            rtt_hist,
            sketch,
            acf,
            workload,
            phase,
        })
    }

    /// Current summary of every estimator.
    pub fn snapshot(&self) -> BankSnapshot {
        let received = self.moments.count();
        let rtt = if received == 0 {
            None
        } else {
            Some(RttSummary {
                mean_ms: self.moments.mean(),
                std_dev_ms: self.moments.std_dev(),
                min_ms: self.moments.min(),
                max_ms: self.moments.max(),
                p50_ms: self.sketch.quantile(0.5).expect("non-empty") as f64 / 1e6,
                p90_ms: self.sketch.quantile(0.9).expect("non-empty") as f64 / 1e6,
                p99_ms: self.sketch.quantile(0.99).expect("non-empty") as f64 / 1e6,
                hist_fnv1a: fnv1a_u64s(self.rtt_hist.counts().iter().copied()),
            })
        };
        BankSnapshot {
            sent: self.loss.sent(),
            received,
            lost: self.loss.lost(),
            loss: self.loss.snapshot(),
            rtt,
            acf: self.acf.snapshot(self.config.acf_max_lag),
            acf_evicted: self.acf.evicted(),
            workload: self.workload.snapshot(),
            phase: self.phase.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, rtt_ms: Option<f64>) -> StreamRecord {
        StreamRecord {
            seq,
            sent_at_ns: seq * 20_000_000,
            rtt_ns: rtt_ms.map(|ms| (ms * 1e6) as u64),
        }
    }

    #[test]
    fn empty_bank_snapshot_is_json_safe() {
        let bank = EstimatorBank::new(BankConfig::bolot(20.0, 72, 0));
        let snap = bank.snapshot();
        assert!(snap.rtt.is_none());
        assert!(snap.acf.is_empty());
        // The vendored writer errors on NaN/∞; this must serialize.
        serde_json::to_string(&snap).expect("JSON-safe");
    }

    #[test]
    fn counts_line_up() {
        let mut bank = EstimatorBank::new(BankConfig::bolot(20.0, 72, 0));
        for i in 0..50 {
            bank.push(&record(
                i,
                if i % 5 == 0 {
                    None
                } else {
                    Some(140.0 + i as f64)
                },
            ));
        }
        let snap = bank.snapshot();
        assert_eq!(snap.sent, 50);
        assert_eq!(snap.lost, 10);
        assert_eq!(snap.received, 40);
        assert_eq!(snap.loss.sent, 50);
        let rtt = snap.rtt.expect("delivered probes");
        assert!(rtt.min_ms >= 140.0 && rtt.max_ms < 200.0);
    }

    #[test]
    fn merge_matches_sequential_for_integer_state() {
        let records: Vec<StreamRecord> = (0..300)
            .map(|i| {
                record(
                    i,
                    if i % 9 == 2 {
                        None
                    } else {
                        Some(100.0 + (i as f64 * 0.7).sin() * 40.0)
                    },
                )
            })
            .collect();
        let mut whole = EstimatorBank::new(BankConfig::bolot(20.0, 72, 0));
        for r in &records {
            whole.push(r);
        }
        let mut a = EstimatorBank::new(BankConfig::bolot(20.0, 72, 0));
        let mut b = EstimatorBank::new(BankConfig::bolot(20.0, 72, 0));
        for r in &records[..137] {
            a.push(r);
        }
        for r in &records[137..] {
            b.push(r);
        }
        a.merge(&b);
        let (sa, sw) = (a.snapshot(), whole.snapshot());
        assert_eq!(
            serde_json::to_string(&sa.loss).unwrap(),
            serde_json::to_string(&sw.loss).unwrap()
        );
        assert_eq!(sa.phase.grid_fnv1a, sw.phase.grid_fnv1a);
        assert_eq!(sa.workload.hist_fnv1a, sw.workload.hist_fnv1a);
        assert_eq!(a.sketch(), whole.sketch());
        assert_eq!(sa.acf, sw.acf);
        assert!((sa.rtt.unwrap().mean_ms - sw.rtt.unwrap().mean_ms).abs() < 1e-9);
    }
}
