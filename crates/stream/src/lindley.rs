//! Online workload estimation via the paper's Lindley recurrence (eq. 6).
//!
//! The batch analyzer (`probenet_core::analyze_workload`) materializes the
//! full interarrival series `g_n = rtt_{n+1} − rtt_n + δ` before binning it
//! and averaging the implied workloads `b̂_n = (μ·g_n − P)/8`. The streaming
//! estimator consumes one record at a time, retaining only the previous
//! record's RTT: each consecutive delivered pair contributes one `g_n` to a
//! fixed-layout histogram (identical binning to the batch analysis) and one
//! clamped workload estimate to a running sum.
//!
//! Exactness: all histogram counts are integers, so they match the batch
//! histogram exactly under any merge grouping. The workload **sum** is a
//! float accumulator — a serial `push` fold performs the same additions in
//! the same order as the batch mean and is bit-identical to it; `merge`
//! regroups the additions, so merged results agree only to floating-point
//! reassociation error (documented as ≤ 1e-9 relative in DESIGN.md §11).

use crate::fnv::fnv1a_u64s;
use probenet_stats::Histogram;
use serde::{Deserialize, Serialize};

/// Streaming interarrival/workload estimator for one probe session.
#[derive(Debug, Clone)]
pub struct StreamingWorkload {
    delta_ms: f64,
    mu_bps: f64,
    p_bits: f64,
    hist: Histogram,
    b_sum: f64,
    pairs: u64,
    /// RTT of the first record of this segment (`None` until one arrives).
    first: Option<Option<u64>>,
    /// RTT of the last record of this segment.
    last: Option<Option<u64>>,
}

/// JSON-facing summary of a [`StreamingWorkload`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSnapshot {
    /// Probe interval δ in ms.
    pub delta_ms: f64,
    /// Assumed bottleneck rate μ in bits/s.
    pub mu_bps: f64,
    /// Consecutive delivered pairs observed (= interarrival samples).
    pub pairs: u64,
    /// Mean estimated per-interval workload in bytes (0.0 with no pairs,
    /// matching the batch `mean_workload_bytes` convention).
    pub mean_workload_bytes: f64,
    /// Interarrival samples offered to the histogram, gutters included.
    pub hist_total: u64,
    /// Samples below the histogram range.
    pub hist_underflow: u64,
    /// Samples above the histogram range.
    pub hist_overflow: u64,
    /// FNV-1a digest of the bin counts — pins the full distribution without
    /// serializing every bin.
    pub hist_fnv1a: String,
}

/// The raw [`StreamingWorkload`] state: parameters, histogram parts and
/// pairing state, exposed so the wire layer can round-trip an estimator
/// bit-for-bit. The histogram's lower edge is always `0.0` by construction
/// and is not carried.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadWireState {
    /// Probe interval δ in ms.
    pub delta_ms: f64,
    /// Assumed bottleneck rate μ in bits/s.
    pub mu_bps: f64,
    /// Probe wire size in bits.
    pub p_bits: f64,
    /// Histogram upper edge (`max_ms`).
    pub hist_hi: f64,
    /// Histogram bin counts.
    pub hist_counts: Vec<u64>,
    /// Histogram underflow gutter.
    pub hist_underflow: u64,
    /// Histogram overflow gutter.
    pub hist_overflow: u64,
    /// Running clamped workload sum in bytes.
    pub b_sum: f64,
    /// Consecutive delivered pairs observed.
    pub pairs: u64,
    /// RTT of the segment's first record (`None` until one arrives).
    pub first: Option<Option<u64>>,
    /// RTT of the segment's last record.
    pub last: Option<Option<u64>>,
}

impl StreamingWorkload {
    /// A new estimator with the batch analyzer's histogram layout:
    /// `[0, max_ms)` split into `max(ceil(max_ms / max(resolution, 0.5 ms)),
    /// 10)` bins.
    ///
    /// # Panics
    /// Panics if `mu_bps` or `max_ms` is not positive.
    pub fn new(
        delta_ms: f64,
        wire_bytes: u32,
        clock_resolution_ns: u64,
        mu_bps: f64,
        max_ms: f64,
    ) -> Self {
        assert!(mu_bps > 0.0 && max_ms > 0.0, "positive parameters");
        let resolution_ms = clock_resolution_ns as f64 / 1e6;
        let bin = resolution_ms.max(0.5);
        let bins = ((max_ms / bin).ceil() as usize).max(10);
        StreamingWorkload {
            delta_ms,
            mu_bps,
            p_bits: wire_bytes as f64 * 8.0,
            hist: Histogram::new(0.0, max_ms, bins),
            b_sum: 0.0,
            pairs: 0,
            first: None,
            last: None,
        }
    }

    /// Record the next probe's RTT (`None` = lost), in sequence order.
    pub fn push(&mut self, rtt_ns: Option<u64>) {
        if let Some(prev) = self.last {
            self.fold_pair(prev, rtt_ns);
        }
        if self.first.is_none() {
            self.first = Some(rtt_ns);
        }
        self.last = Some(rtt_ns);
    }

    fn fold_pair(&mut self, prev: Option<u64>, cur: Option<u64>) {
        if let (Some(a), Some(b)) = (prev, cur) {
            let g_ms = (b as f64 - a as f64) / 1e6 + self.delta_ms;
            self.hist.add(g_ms);
            self.b_sum += ((self.mu_bps * g_ms / 1e3 - self.p_bits) / 8.0).max(0.0);
            self.pairs += 1;
        }
    }

    /// Fold `other` (the records immediately following this segment) into
    /// `self`. Histogram counts and pair counts merge exactly; the workload
    /// sum reassociates (ε-exact).
    ///
    /// # Panics
    /// Panics if the two estimators were built with different parameters.
    pub fn merge(&mut self, other: &StreamingWorkload) {
        assert!(
            self.delta_ms == other.delta_ms
                && self.mu_bps == other.mu_bps
                && self.p_bits == other.p_bits
                && self.hist.same_layout(&other.hist),
            "workload estimator parameters differ"
        );
        let Some(b_first) = other.first else {
            return; // other is empty
        };
        if let Some(a_last) = self.last {
            self.fold_pair(a_last, b_first);
        } else {
            self.first = other.first;
        }
        self.hist.merge(&other.hist);
        self.b_sum += other.b_sum;
        self.pairs += other.pairs;
        self.last = other.last;
    }

    /// Interarrival samples observed so far.
    pub fn pairs(&self) -> u64 {
        self.pairs
    }

    /// The interarrival histogram (batch-identical layout and counts).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Mean estimated per-interval workload in bytes (0.0 with no pairs).
    pub fn mean_workload_bytes(&self) -> f64 {
        if self.pairs == 0 {
            return 0.0;
        }
        self.b_sum / self.pairs as f64
    }

    /// The raw estimator state, for serialization. Field-for-field with the
    /// internal representation, so `from_wire_state(wire_state())` is exact.
    pub fn wire_state(&self) -> WorkloadWireState {
        WorkloadWireState {
            delta_ms: self.delta_ms,
            mu_bps: self.mu_bps,
            p_bits: self.p_bits,
            hist_hi: self.hist.hi(),
            hist_counts: self.hist.counts().to_vec(),
            hist_underflow: self.hist.underflow(),
            hist_overflow: self.hist.overflow(),
            b_sum: self.b_sum,
            pairs: self.pairs,
            first: self.first,
            last: self.last,
        }
    }

    /// Rebuild from a previously captured [`WorkloadWireState`].
    ///
    /// Total: parameter sanity, histogram layout, pair accounting and the
    /// workload sum's invariants are all checked (overflow-checked where
    /// counts are summed), so a hostile state cannot produce an estimator
    /// whose `snapshot()` or `merge()` would panic or emit NaN.
    pub fn from_wire_state(s: WorkloadWireState) -> Result<Self, &'static str> {
        if !(s.mu_bps.is_finite() && s.mu_bps > 0.0) {
            return Err("workload: bad mu");
        }
        if !s.delta_ms.is_finite() {
            return Err("workload: bad delta");
        }
        if !(s.p_bits.is_finite() && s.p_bits >= 0.0) {
            return Err("workload: bad packet size");
        }
        if !(s.b_sum.is_finite() && s.b_sum >= 0.0) {
            return Err("workload: bad workload sum");
        }
        let hist = Histogram::from_parts(
            0.0,
            s.hist_hi,
            s.hist_counts,
            s.hist_underflow,
            s.hist_overflow,
        )?;
        let mut offered = hist.underflow().checked_add(hist.overflow());
        for &c in hist.counts() {
            offered = offered.and_then(|t| t.checked_add(c));
        }
        if offered.ok_or("workload: histogram count overflow")? != s.pairs {
            return Err("workload: pair accounting mismatch");
        }
        match (s.first, s.last) {
            (Some(_), Some(_)) => {}
            (None, None) => {
                if s.pairs != 0 {
                    return Err("workload: pairs without records");
                }
            }
            _ => return Err("workload: inconsistent boundary records"),
        }
        if s.pairs == 0 && s.b_sum != 0.0 {
            return Err("workload: workload sum without pairs");
        }
        Ok(StreamingWorkload {
            delta_ms: s.delta_ms,
            mu_bps: s.mu_bps,
            p_bits: s.p_bits,
            hist,
            b_sum: s.b_sum,
            pairs: s.pairs,
            first: s.first,
            last: s.last,
        })
    }

    /// Current summary.
    pub fn snapshot(&self) -> WorkloadSnapshot {
        WorkloadSnapshot {
            delta_ms: self.delta_ms,
            mu_bps: self.mu_bps,
            pairs: self.pairs,
            mean_workload_bytes: self.mean_workload_bytes(),
            hist_total: self.hist.total(),
            hist_underflow: self.hist.underflow(),
            hist_overflow: self.hist.overflow(),
            hist_fnv1a: fnv1a_u64s(self.hist.counts().iter().copied()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_all(w: &mut StreamingWorkload, rtts: &[Option<u64>]) {
        for &r in rtts {
            w.push(r);
        }
    }

    fn ms(x: f64) -> Option<u64> {
        Some((x * 1e6) as u64)
    }

    #[test]
    fn matches_batch_interarrival_and_mean() {
        // Same arithmetic as the batch test: diff 15 ms at δ=20 → g=35 ms,
        // b = (128000·0.035 − 576)/8 = 488 bytes.
        let mut w = StreamingWorkload::new(20.0, 72, 0, 128_000.0, 100.0);
        push_all(&mut w, &[ms(140.0), ms(155.0)]);
        assert_eq!(w.pairs(), 1);
        assert!((w.mean_workload_bytes() - 488.0).abs() < 1e-6);
    }

    #[test]
    fn losses_break_pairs() {
        let mut w = StreamingWorkload::new(20.0, 72, 0, 128_000.0, 100.0);
        push_all(&mut w, &[ms(140.0), None, ms(140.0), ms(141.0)]);
        assert_eq!(w.pairs(), 1);
    }

    #[test]
    fn negative_estimates_clamp() {
        let mut w = StreamingWorkload::new(20.0, 72, 0, 128_000.0, 100.0);
        push_all(&mut w, &[ms(159.0), ms(140.0)]);
        assert_eq!(w.mean_workload_bytes(), 0.0);
        assert_eq!(w.pairs(), 1);
    }

    #[test]
    fn merge_matches_sequential() {
        let rtts: Vec<Option<u64>> = (0..100)
            .map(|i| {
                if i % 7 == 3 {
                    None
                } else {
                    ms(140.0 + (i as f64 * 1.3).sin() * 5.0)
                }
            })
            .collect();
        let mut whole = StreamingWorkload::new(20.0, 72, 1_000_000, 128_000.0, 100.0);
        push_all(&mut whole, &rtts);
        for split in [0, 1, 3, 50, 99, 100] {
            let mut a = StreamingWorkload::new(20.0, 72, 1_000_000, 128_000.0, 100.0);
            let mut b = StreamingWorkload::new(20.0, 72, 1_000_000, 128_000.0, 100.0);
            push_all(&mut a, &rtts[..split]);
            push_all(&mut b, &rtts[split..]);
            a.merge(&b);
            assert_eq!(a.pairs(), whole.pairs(), "split {split}");
            assert_eq!(a.hist.counts(), whole.hist.counts(), "split {split}");
            assert!(
                (a.mean_workload_bytes() - whole.mean_workload_bytes()).abs() < 1e-9,
                "split {split}"
            );
        }
    }
}
