//! The multi-session collector: N producers, bounded channels, one folding
//! thread, deterministic reports.
//!
//! Each probe session — keyed by `(path, δ, seed)` — gets its own bounded
//! SPSC channel and its own [`EstimatorBank`]. Producer threads (a
//! simulator driver callback or the real-UDP receive loop) push
//! [`StreamRecord`]s; the collector thread round-robins over the sessions,
//! drains each channel in batches, and folds the records into that
//! session's bank. Because every record is folded into exactly one bank in
//! its session's sequence order, the final report is **independent of
//! thread interleaving** — the same guarantee the batch pipeline gets from
//! ordered `par_map`, extended to live ingest.
//!
//! Backpressure is explicit: [`SessionProducer::push`] blocks until there
//! is room, [`SessionProducer::offer`] refuses and counts. The per-session
//! drop counts appear in the report, so "no silent drops" is an assertable
//! invariant, not a hope.

use crate::bank::{BankConfig, BankSnapshot, EstimatorBank};
use crate::record::{SessionKey, StreamRecord};
use crate::spsc::{self, Consumer, Producer};
use serde::{Deserialize, Serialize};
use std::thread;
use std::time::Duration;

/// Collector tuning knobs.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Per-session channel capacity (records).
    pub channel_capacity: usize,
    /// Emit an interim snapshot every this many folded records per session
    /// (0 = final snapshot only).
    pub snapshot_every: u64,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            channel_capacity: 1024,
            snapshot_every: 0,
        }
    }
}

/// The sending handle for one session. Cheap to move into a producer
/// thread; dropping it tells the collector the session is complete.
pub struct SessionProducer {
    tx: Producer<StreamRecord>,
}

impl SessionProducer {
    /// Enqueue a record, blocking while the channel is full. Returns
    /// `false` if the collector is gone.
    pub fn push(&self, r: StreamRecord) -> bool {
        self.tx.send(r).is_ok()
    }

    /// Enqueue without blocking; on a full channel the record is rejected
    /// and counted in the session's drop counter. Returns `true` if
    /// enqueued.
    pub fn offer(&self, r: StreamRecord) -> bool {
        self.tx.offer(r)
    }

    /// Records rejected by [`SessionProducer::offer`] so far.
    pub fn dropped(&self) -> u64 {
        self.tx.dropped()
    }
}

struct SessionSlot {
    key: SessionKey,
    bank: EstimatorBank,
    rx: Consumer<StreamRecord>,
    records: u64,
    interim: Vec<InterimSnapshot>,
    finished: bool,
}

/// A periodic snapshot taken mid-stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterimSnapshot {
    /// Records folded into the session when the snapshot was taken.
    pub at_records: u64,
    /// The bank summary at that point.
    pub snapshot: BankSnapshot,
}

/// A collector being configured: add sessions, then [`Collector::start`].
pub struct Collector {
    config: CollectorConfig,
    sessions: Vec<SessionSlot>,
}

/// A started collector; [`RunningCollector::join`] waits for every
/// producer to finish and returns the report.
pub struct RunningCollector {
    handle: thread::JoinHandle<CollectorReport>,
}

/// Final per-session results, sorted by session key.
pub struct CollectorReport {
    /// One entry per session.
    pub sessions: Vec<SessionReport>,
}

/// Everything the collector knows about one completed session.
pub struct SessionReport {
    /// The session's identity.
    pub key: SessionKey,
    /// Records folded into the bank.
    pub records: u64,
    /// Records the producer's `offer` had to drop (always reported, never
    /// silent).
    pub dropped: u64,
    /// Interim snapshots, if `snapshot_every` was set.
    pub interim: Vec<InterimSnapshot>,
    /// The final summary.
    pub snapshot: BankSnapshot,
    /// The full estimator bank, for merging or deeper inspection.
    pub bank: EstimatorBank,
}

// The vendored serde derive does not handle lifetime-generic types, so the
// JSON view owns (clones of) the small snapshot data; the banks themselves
// are never serialized.
#[derive(Serialize)]
struct SessionView {
    key: String,
    records: u64,
    dropped: u64,
    interim: Vec<InterimSnapshot>,
    snapshot: BankSnapshot,
}

#[derive(Serialize)]
struct ReportView {
    sessions: Vec<SessionView>,
}

impl Collector {
    /// A collector with the given tuning.
    pub fn new(config: CollectorConfig) -> Self {
        Collector {
            config,
            sessions: Vec::new(),
        }
    }

    /// Register a session and get its producer handle.
    ///
    /// # Panics
    /// Panics if the key is already registered.
    pub fn add_session(&mut self, key: SessionKey, bank: BankConfig) -> SessionProducer {
        assert!(
            self.sessions.iter().all(|s| s.key != key),
            "duplicate session key {key}"
        );
        let (tx, rx) = spsc::channel(self.config.channel_capacity);
        self.sessions.push(SessionSlot {
            key,
            bank: EstimatorBank::new(bank),
            rx,
            records: 0,
            interim: Vec::new(),
            finished: false,
        });
        SessionProducer { tx }
    }

    /// Spawn the collector thread. It runs until every producer handle has
    /// been dropped and every channel drained.
    pub fn start(self) -> RunningCollector {
        let handle = thread::Builder::new()
            .name("probenet-collector".into())
            .spawn(move || self.run())
            .expect("spawn collector thread");
        RunningCollector { handle }
    }

    fn run(mut self) -> CollectorReport {
        let snapshot_every = self.config.snapshot_every;
        let mut buf: Vec<StreamRecord> = Vec::with_capacity(1024);
        loop {
            let mut moved = 0usize;
            let mut all_finished = true;
            for slot in &mut self.sessions {
                if slot.finished {
                    continue;
                }
                let n = slot.rx.drain(&mut buf, 1024);
                moved += n;
                for r in buf.drain(..) {
                    slot.bank.push(&r);
                    slot.records += 1;
                    if snapshot_every > 0 && slot.records % snapshot_every == 0 {
                        slot.interim.push(InterimSnapshot {
                            at_records: slot.records,
                            snapshot: slot.bank.snapshot(),
                        });
                    }
                }
                if n == 0 && slot.rx.is_finished() {
                    slot.finished = true;
                } else {
                    all_finished = false;
                }
            }
            if all_finished {
                break;
            }
            if moved == 0 {
                // Nothing ready on any channel: back off briefly instead of
                // spinning a core the producers need (this host has one).
                thread::sleep(Duration::from_micros(50));
            }
        }

        let mut sessions: Vec<SessionReport> = self
            .sessions
            .into_iter()
            .map(|s| SessionReport {
                snapshot: s.bank.snapshot(),
                dropped: s.rx.dropped(),
                key: s.key,
                records: s.records,
                interim: s.interim,
                bank: s.bank,
            })
            .collect();
        sessions.sort_by(|a, b| a.key.cmp(&b.key));
        CollectorReport { sessions }
    }
}

impl RunningCollector {
    /// Wait for completion and return the report (sessions sorted by key).
    pub fn join(self) -> CollectorReport {
        self.handle.join().expect("collector thread panicked")
    }
}

impl CollectorReport {
    /// Total records folded across all sessions.
    pub fn total_records(&self) -> u64 {
        self.sessions.iter().map(|s| s.records).sum()
    }

    /// Total records dropped (by `offer`) across all sessions.
    pub fn total_dropped(&self) -> u64 {
        self.sessions.iter().map(|s| s.dropped).sum()
    }

    /// Deterministic JSON rendering of the report (keys sorted, snapshots
    /// only — the banks themselves stay in memory for merging).
    pub fn to_json(&self) -> String {
        let view = ReportView {
            sessions: self
                .sessions
                .iter()
                .map(|s| SessionView {
                    key: s.key.to_string(),
                    records: s.records,
                    dropped: s.dropped,
                    interim: s.interim.clone(),
                    snapshot: s.snapshot.clone(),
                })
                .collect(),
        };
        serde_json::to_string_pretty(&view).expect("snapshot is JSON-safe")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, rtt_ms: Option<f64>) -> StreamRecord {
        StreamRecord {
            seq,
            sent_at_ns: seq * 20_000_000,
            rtt_ns: rtt_ms.map(|ms| (ms * 1e6) as u64),
        }
    }

    fn session_records(n: u64, seed: u64) -> Vec<StreamRecord> {
        let mut state = seed;
        (0..n)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                record(
                    i,
                    if u < 0.1 {
                        None
                    } else {
                        Some(100.0 + u * 50.0)
                    },
                )
            })
            .collect()
    }

    #[test]
    fn collector_matches_direct_fold() {
        let mut collector = Collector::new(CollectorConfig {
            channel_capacity: 64,
            snapshot_every: 0,
        });
        let keys: Vec<SessionKey> = (0..3)
            .map(|i| SessionKey::new("test-path", 20 + i * 10, 1993 + i))
            .collect();
        let producers: Vec<SessionProducer> = keys
            .iter()
            .map(|k| collector.add_session(k.clone(), BankConfig::bolot(k.delta_ms(), 72, 0)))
            .collect();
        let running = collector.start();
        let mut handles = Vec::new();
        for (i, p) in producers.into_iter().enumerate() {
            let records = session_records(5_000, i as u64 + 1);
            handles.push(thread::spawn(move || {
                for r in &records {
                    assert!(p.push(*r));
                }
                records
            }));
        }
        let per_session: Vec<Vec<StreamRecord>> = handles
            .into_iter()
            .map(|h| h.join().expect("producer"))
            .collect();
        let report = running.join();

        assert_eq!(report.total_dropped(), 0);
        assert_eq!(report.sessions.len(), 3);
        // Report order is key order; fold each session directly and compare.
        for (key, records) in keys.iter().zip(&per_session) {
            let mut bank = EstimatorBank::new(BankConfig::bolot(key.delta_ms(), 72, 0));
            for r in records {
                bank.push(r);
            }
            let s = report
                .sessions
                .iter()
                .find(|s| &s.key == key)
                .expect("session present");
            assert_eq!(s.records, 5_000);
            assert_eq!(
                serde_json::to_string(&s.snapshot).unwrap(),
                serde_json::to_string(&bank.snapshot()).unwrap()
            );
        }
        // JSON renders without error and is stable in key order.
        let json = report.to_json();
        assert!(json.contains("test-path/delta20ms/seed1993"));
    }

    #[test]
    fn interim_snapshots_fire_at_interval() {
        let mut collector = Collector::new(CollectorConfig {
            channel_capacity: 32,
            snapshot_every: 100,
        });
        let p = collector.add_session(
            SessionKey::new("interim", 20, 1),
            BankConfig::bolot(20.0, 72, 0),
        );
        let running = collector.start();
        for r in session_records(250, 9) {
            assert!(p.push(r));
        }
        drop(p);
        let report = running.join();
        let s = &report.sessions[0];
        assert_eq!(s.interim.len(), 2);
        assert_eq!(s.interim[0].at_records, 100);
        assert_eq!(s.interim[1].at_records, 200);
        assert_eq!(s.snapshot.sent, 250);
    }

    #[test]
    fn offer_drops_are_counted_and_reported() {
        let mut collector = Collector::new(CollectorConfig {
            channel_capacity: 1,
            snapshot_every: 0,
        });
        let p = collector.add_session(
            SessionKey::new("droppy", 20, 1),
            BankConfig::bolot(20.0, 72, 0),
        );
        // Fill the 1-slot channel before the collector starts, then offer
        // more: exactly those overflow records are dropped, and counted.
        assert!(p.offer(record(0, Some(100.0))));
        let mut offered_ok = 1u64;
        for i in 1..50u64 {
            if p.offer(record(i, Some(100.0))) {
                offered_ok += 1;
            }
        }
        let dropped_before_start = p.dropped();
        assert_eq!(offered_ok + dropped_before_start, 50);
        let running = collector.start();
        drop(p);
        let report = running.join();
        let s = &report.sessions[0];
        assert_eq!(s.records + s.dropped, 50);
        assert!(s.dropped >= 1);
    }

    #[test]
    #[should_panic(expected = "duplicate session key")]
    fn duplicate_keys_rejected() {
        let mut c = Collector::new(CollectorConfig::default());
        let _a = c.add_session(SessionKey::new("x", 20, 1), BankConfig::bolot(20.0, 72, 0));
        let _b = c.add_session(SessionKey::new("x", 20, 1), BankConfig::bolot(20.0, 72, 0));
    }
}
