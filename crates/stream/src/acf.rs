//! Windowed autocorrelation over a bounded ring of recent samples.
//!
//! A true streaming ACF to arbitrary lag needs the full series; Bolot's
//! analysis only ever reads the first few tens of lags, and the
//! decorrelation structure of interest lives at short range. So the
//! streaming estimator keeps a fixed-size ring of the most recent `W`
//! delivered RTTs and computes the exact batch ACF over that window on
//! `snapshot()`. When the session is shorter than `W` the result is
//! bit-identical to the batch pipeline's ACF over the whole series — the
//! regime the differential harness pins. Longer sessions get the ACF of
//! the trailing window, with the truncation recorded via [`WindowedAcf::evicted`].

use std::collections::VecDeque;

/// Bounded ring of the last `window` samples with exact batch ACF on demand.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedAcf {
    window: usize,
    buf: VecDeque<f64>,
    evicted: u64,
}

impl WindowedAcf {
    /// An empty window of capacity `window` (must be ≥ 2).
    pub fn new(window: usize) -> Self {
        assert!(window >= 2, "ACF window must hold at least two samples");
        WindowedAcf {
            window,
            buf: VecDeque::with_capacity(window),
            evicted: 0,
        }
    }

    /// Record one delivered sample.
    pub fn push(&mut self, v: f64) {
        if self.buf.len() == self.window {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(v);
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no samples have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Window capacity.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Samples pushed out of the window so far. Zero means the snapshot ACF
    /// is exactly the batch ACF of the full per-session series.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The held samples in ring order (oldest first), for serialization.
    pub fn samples(&self) -> impl Iterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }

    /// Rebuild a window from its capacity, eviction count and held samples.
    ///
    /// Total: the constructor's `window >= 2` contract and the ring
    /// invariants (`len ≤ window`, evictions only start once the ring is
    /// full, finite samples) are checked instead of asserted, and the
    /// buffer is allocated from the samples actually present — a hostile
    /// `window` cannot force a huge reservation.
    pub fn from_samples(
        window: usize,
        evicted: u64,
        samples: Vec<f64>,
    ) -> Result<Self, &'static str> {
        if window < 2 {
            return Err("acf: window below two samples");
        }
        if samples.len() > window {
            return Err("acf: more samples than the window holds");
        }
        if evicted > 0 && samples.len() != window {
            return Err("acf: evictions from a non-full window");
        }
        if samples.iter().any(|v| !v.is_finite()) {
            return Err("acf: non-finite sample");
        }
        Ok(WindowedAcf {
            window,
            buf: samples.into(),
            evicted,
        })
    }

    /// Fold `other` (a later segment of the same series) into `self`:
    /// keep the last `window` samples of the concatenation. Associative,
    /// because "last `W` of a concatenation" only depends on the trailing
    /// `W` samples regardless of how the stream was split.
    pub fn merge(&mut self, other: &WindowedAcf) {
        assert_eq!(self.window, other.window, "ACF window sizes differ");
        // Samples of `other` that its own ring already evicted are gone for
        // good; they also evict everything older in `self`.
        if other.evicted > 0 {
            self.evicted += self.buf.len() as u64 + other.evicted;
            self.buf.clear();
        }
        for &v in &other.buf {
            self.push(v);
        }
    }

    /// Exact ACF of the held window up to `max_lag` (clamped to the window
    /// length), via the same [`probenet_stats::autocorrelation`] the batch
    /// pipeline uses. Empty window → empty vec.
    pub fn snapshot(&self, max_lag: usize) -> Vec<f64> {
        if self.buf.is_empty() {
            return Vec::new();
        }
        let series: Vec<f64> = self.buf.iter().copied().collect();
        let lag = max_lag.min(series.len() - 1);
        probenet_stats::autocorrelation(&series, lag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_capacity_matches_batch() {
        let series: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut w = WindowedAcf::new(1024);
        for &v in &series {
            w.push(v);
        }
        assert_eq!(w.snapshot(20), probenet_stats::autocorrelation(&series, 20));
        assert_eq!(w.evicted(), 0);
    }

    #[test]
    fn over_capacity_keeps_tail() {
        let series: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut w = WindowedAcf::new(8);
        for &v in &series {
            w.push(v);
        }
        assert_eq!(w.len(), 8);
        assert_eq!(w.evicted(), 42);
        let tail: Vec<f64> = series[42..].to_vec();
        assert_eq!(w.snapshot(4), probenet_stats::autocorrelation(&tail, 4));
    }

    #[test]
    fn merge_equals_concatenation() {
        let series: Vec<f64> = (0..60).map(|i| (i as f64 * 1.7).cos()).collect();
        for split in [0, 5, 30, 59, 60] {
            let mut whole = WindowedAcf::new(16);
            for &v in &series {
                whole.push(v);
            }
            let mut a = WindowedAcf::new(16);
            let mut b = WindowedAcf::new(16);
            for &v in &series[..split] {
                a.push(v);
            }
            for &v in &series[split..] {
                b.push(v);
            }
            a.merge(&b);
            assert_eq!(a, whole, "split at {split}");
        }
    }
}
