//! Incremental phase-plot density grid (the paper's Figures 3–7).
//!
//! The batch `probenet_core::PhasePlot` materializes every `(rtt_n,
//! rtt_{n+1})` point; at streaming rates that is unbounded memory for a
//! scatter nobody reads point-by-point. The online variant bins the points
//! into a fixed square density grid as they arrive: the same information
//! the phase-plot *figures* convey (where the mass sits, the diagonal
//! structure, compression streaks), in O(bins²) memory.
//!
//! Pairing state is identical to the workload estimator: only the previous
//! record's RTT is retained, each consecutive delivered pair contributes one
//! point, and `merge` folds the single junction pair — so grid counts are
//! exact integers under any merge grouping.

use crate::fnv::fnv1a_u64s;
use serde::{Deserialize, Serialize};

/// Streaming 2-D density grid over consecutive-RTT pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDensity {
    lo: f64,
    hi: f64,
    bins: usize,
    /// Row-major `bins × bins` counts; `grid[ix * bins + iy]` where `ix`
    /// bins `rtt_n` and `iy` bins `rtt_{n+1}`.
    grid: Vec<u64>,
    pairs: u64,
    out_of_range: u64,
    first: Option<Option<u64>>,
    last: Option<Option<u64>>,
}

/// JSON-facing summary of a [`PhaseDensity`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSnapshot {
    /// Grid lower edge (ms).
    pub lo_ms: f64,
    /// Grid upper edge (ms).
    pub hi_ms: f64,
    /// Bins per axis.
    pub bins: usize,
    /// Consecutive delivered pairs observed.
    pub pairs: u64,
    /// Pairs with either coordinate outside `[lo, hi)`.
    pub out_of_range: u64,
    /// Grid cells with at least one point.
    pub nonzero_cells: usize,
    /// FNV-1a digest of the full grid — pins every cell count without
    /// serializing `bins²` numbers.
    pub grid_fnv1a: String,
}

/// The raw [`PhaseDensity`] state: grid layout, counts and pairing state,
/// exposed so the wire layer can round-trip an estimator bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseWireState {
    /// Grid lower edge (ms).
    pub lo: f64,
    /// Grid upper edge (ms).
    pub hi: f64,
    /// Bins per axis.
    pub bins: usize,
    /// Row-major `bins × bins` cell counts.
    pub grid: Vec<u64>,
    /// Consecutive delivered pairs observed.
    pub pairs: u64,
    /// Pairs with either coordinate outside `[lo, hi)`.
    pub out_of_range: u64,
    /// RTT of the segment's first record (`None` until one arrives).
    pub first: Option<Option<u64>>,
    /// RTT of the segment's last record.
    pub last: Option<Option<u64>>,
}

impl PhaseDensity {
    /// A new grid over `[lo_ms, hi_ms)` per axis with `bins × bins` cells.
    ///
    /// # Panics
    /// Panics on a non-positive range or zero bins.
    pub fn new(lo_ms: f64, hi_ms: f64, bins: usize) -> Self {
        assert!(
            lo_ms.is_finite() && hi_ms.is_finite() && lo_ms < hi_ms,
            "bad range"
        );
        assert!(bins > 0, "need at least one bin");
        PhaseDensity {
            lo: lo_ms,
            hi: hi_ms,
            bins,
            grid: vec![0; bins * bins],
            pairs: 0,
            out_of_range: 0,
            first: None,
            last: None,
        }
    }

    fn axis_bin(&self, x_ms: f64) -> Option<usize> {
        if x_ms < self.lo || x_ms >= self.hi {
            return None;
        }
        let w = (self.hi - self.lo) / self.bins as f64;
        Some((((x_ms - self.lo) / w) as usize).min(self.bins - 1))
    }

    /// Record the next probe's RTT (`None` = lost), in sequence order.
    pub fn push(&mut self, rtt_ns: Option<u64>) {
        if let Some(prev) = self.last {
            self.fold_pair(prev, rtt_ns);
        }
        if self.first.is_none() {
            self.first = Some(rtt_ns);
        }
        self.last = Some(rtt_ns);
    }

    fn fold_pair(&mut self, prev: Option<u64>, cur: Option<u64>) {
        if let (Some(a), Some(b)) = (prev, cur) {
            self.pairs += 1;
            let (x, y) = (a as f64 / 1e6, b as f64 / 1e6);
            match (self.axis_bin(x), self.axis_bin(y)) {
                (Some(ix), Some(iy)) => self.grid[ix * self.bins + iy] += 1,
                _ => self.out_of_range += 1,
            }
        }
    }

    /// Fold `other` (the records immediately following this segment) into
    /// `self`. Exact and associative (all state is integer counts).
    ///
    /// # Panics
    /// Panics if the grids have different layouts.
    pub fn merge(&mut self, other: &PhaseDensity) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins == other.bins,
            "phase grid layouts differ"
        );
        let Some(b_first) = other.first else {
            return;
        };
        if let Some(a_last) = self.last {
            self.fold_pair(a_last, b_first);
        } else {
            self.first = other.first;
        }
        for (a, &b) in self.grid.iter_mut().zip(&other.grid) {
            *a += b;
        }
        self.pairs += other.pairs;
        self.out_of_range += other.out_of_range;
        self.last = other.last;
    }

    /// Pairs observed so far.
    pub fn pairs(&self) -> u64 {
        self.pairs
    }

    /// The raw row-major grid counts.
    pub fn counts(&self) -> &[u64] {
        &self.grid
    }

    /// Bins per axis.
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// The cell a point falls into, if inside the grid — exposed so tests
    /// can re-bin batch phase-plot points with the identical rule.
    pub fn cell_of(&self, x_ms: f64, y_ms: f64) -> Option<(usize, usize)> {
        Some((self.axis_bin(x_ms)?, self.axis_bin(y_ms)?))
    }

    /// The raw grid state, for serialization. Field-for-field with the
    /// internal representation, so `from_wire_state(wire_state())` is exact.
    pub fn wire_state(&self) -> PhaseWireState {
        PhaseWireState {
            lo: self.lo,
            hi: self.hi,
            bins: self.bins,
            grid: self.grid.clone(),
            pairs: self.pairs,
            out_of_range: self.out_of_range,
            first: self.first,
            last: self.last,
        }
    }

    /// Rebuild from a previously captured [`PhaseWireState`].
    ///
    /// Total: layout sanity, grid shape and the pair mass balance
    /// (`Σ grid + out_of_range == pairs`, overflow-checked) are verified,
    /// so a hostile state either comes back `Err` or behaves exactly like
    /// a grid built by `push()`.
    pub fn from_wire_state(s: PhaseWireState) -> Result<Self, &'static str> {
        if !(s.lo.is_finite() && s.hi.is_finite() && s.lo < s.hi) {
            return Err("phase: bad range");
        }
        if s.bins == 0 {
            return Err("phase: zero bins");
        }
        let cells = s
            .bins
            .checked_mul(s.bins)
            .ok_or("phase: grid size overflow")?;
        if s.grid.len() != cells {
            return Err("phase: grid shape mismatch");
        }
        let mut binned = 0u64;
        for &c in &s.grid {
            binned = binned.checked_add(c).ok_or("phase: count overflow")?;
        }
        let mass = binned
            .checked_add(s.out_of_range)
            .ok_or("phase: count overflow")?;
        if mass != s.pairs {
            return Err("phase: pair mass mismatch");
        }
        match (s.first, s.last) {
            (Some(_), Some(_)) => {}
            (None, None) => {
                if s.pairs != 0 {
                    return Err("phase: pairs without records");
                }
            }
            _ => return Err("phase: inconsistent boundary records"),
        }
        Ok(PhaseDensity {
            lo: s.lo,
            hi: s.hi,
            bins: s.bins,
            grid: s.grid,
            pairs: s.pairs,
            out_of_range: s.out_of_range,
            first: s.first,
            last: s.last,
        })
    }

    /// Current summary.
    pub fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            lo_ms: self.lo,
            hi_ms: self.hi,
            bins: self.bins,
            pairs: self.pairs,
            out_of_range: self.out_of_range,
            nonzero_cells: self.grid.iter().filter(|&&c| c > 0).count(),
            grid_fnv1a: fnv1a_u64s(self.grid.iter().copied()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: f64) -> Option<u64> {
        Some((x * 1e6) as u64)
    }

    #[test]
    fn pairs_and_binning() {
        let mut p = PhaseDensity::new(0.0, 100.0, 10);
        for r in [ms(15.0), ms(25.0), None, ms(35.0), ms(45.0)] {
            p.push(r);
        }
        // Pairs: (15,25) and (35,45); the loss breaks (25,35).
        assert_eq!(p.pairs(), 2);
        assert_eq!(p.counts()[12], 1); // cell (1, 2)
        assert_eq!(p.counts()[34], 1); // cell (3, 4)
    }

    #[test]
    fn out_of_range_counted_not_dropped() {
        let mut p = PhaseDensity::new(0.0, 10.0, 5);
        for r in [ms(5.0), ms(50.0)] {
            p.push(r);
        }
        assert_eq!(p.pairs(), 1);
        assert_eq!(p.snapshot().out_of_range, 1);
        assert_eq!(p.snapshot().nonzero_cells, 0);
    }

    #[test]
    fn merge_matches_sequential() {
        let rtts: Vec<Option<u64>> = (0..80)
            .map(|i| {
                if i % 11 == 5 {
                    None
                } else {
                    ms(40.0 + (i as f64 * 0.9).sin() * 30.0)
                }
            })
            .collect();
        let mut whole = PhaseDensity::new(0.0, 100.0, 16);
        for &r in &rtts {
            whole.push(r);
        }
        for split in [0, 1, 40, 79, 80] {
            let mut a = PhaseDensity::new(0.0, 100.0, 16);
            let mut b = PhaseDensity::new(0.0, 100.0, 16);
            for &r in &rtts[..split] {
                a.push(r);
            }
            for &r in &rtts[split..] {
                b.push(r);
            }
            a.merge(&b);
            assert_eq!(a, whole, "split {split}");
        }
    }
}
