//! FNV-1a over little-endian `u64` words — a compact, dependency-free way
//! to pin a large count grid in a JSON snapshot without serializing every
//! cell. Same constants as the golden-trace hasher in `probenet-bench`.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Hash a sequence of `u64` words (as their 8 little-endian bytes each) and
/// render the digest as 16 lowercase hex characters.
pub fn fnv1a_u64s<I: IntoIterator<Item = u64>>(words: I) -> String {
    let mut h = FNV_OFFSET;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_order_sensitive() {
        let a = fnv1a_u64s([1, 2, 3]);
        assert_eq!(a, fnv1a_u64s([1, 2, 3]));
        assert_ne!(a, fnv1a_u64s([3, 2, 1]));
        assert_eq!(a.len(), 16);
    }
}
