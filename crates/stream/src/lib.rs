//! # probenet-stream
//!
//! Bounded-memory **online** analysis of probe delay/loss streams, and a
//! multi-session collector that feeds it.
//!
//! The batch pipeline in `probenet-core` answers Bolot's questions — loss
//! burstiness (`ulp`/`clp`/`plg`), delay distributions, interarrival
//! workload peaks, phase-plot structure — from a fully materialized
//! [`RttSeries`](../probenet_netdyn/struct.RttSeries.html). This crate
//! answers the same questions from a *stream*: each estimator consumes one
//! [`StreamRecord`] at a time in O(1) memory and exposes the same triple of
//! operations:
//!
//! * `push(record)` — fold the next observation in sequence order;
//! * `snapshot()` — the current summary, cheap enough to call mid-stream;
//! * `merge(other)` — combine the summary of an adjacent segment.
//!
//! ## Exactness policy
//!
//! Every estimator documents which of two guarantees it gives relative to
//! the batch pipeline (the differential suite in `tests/streaming.rs`
//! enforces both):
//!
//! * **Byte-exact** — integer state only; serial folds *and* arbitrary
//!   merge groupings reproduce the batch result bit-for-bit. This covers
//!   [`StreamingLoss`] (all loss metrics incl. the runs/χ² tests), all
//!   histogram and grid counts, and the quantile sketch's buckets.
//! * **ε-bounded** — float accumulators. A serial `push` fold performs the
//!   batch's additions in the batch's order (bit-identical); `merge`
//!   reassociates sums, so merged results carry reassociation error
//!   (≤ 1e-9 relative in this suite's regimes). Sketch quantiles are within
//!   relative `2⁻⁷` of the exact nearest-rank value by construction, and
//!   the windowed ACF equals the batch ACF exactly while nothing has been
//!   evicted from its ring.
//!
//! ## The collector
//!
//! [`Collector`] multiplexes N concurrent sessions keyed by
//! `(path, δ, seed)`: producers push into bounded SPSC channels — blocking
//! [`SessionProducer::push`] or drop-counting [`SessionProducer::offer`],
//! never silent loss — and one folding thread maintains a per-session
//! [`EstimatorBank`], emitting deterministic JSON reports whose content is
//! independent of thread interleaving.

pub mod acf;
pub mod bank;
pub mod collector;
mod fnv;
pub mod lindley;
pub mod loss;
pub mod phase;
pub mod quantile;
pub mod record;
pub mod spsc;

pub use acf::WindowedAcf;
pub use bank::{BankConfig, BankSnapshot, BankWireState, EstimatorBank, RttSummary};
pub use collector::{
    Collector, CollectorConfig, CollectorReport, InterimSnapshot, RunningCollector,
    SessionProducer, SessionReport,
};
pub use fnv::fnv1a_u64s;
pub use lindley::{StreamingWorkload, WorkloadSnapshot, WorkloadWireState};
pub use loss::{Chi2Snapshot, LossSnapshot, LossWireState, RunsTestSnapshot, StreamingLoss};
pub use phase::{PhaseDensity, PhaseSnapshot, PhaseWireState};
pub use quantile::LogQuantileSketch;
pub use record::{SessionKey, StreamRecord};
