//! A mergeable log-linear quantile sketch over integer nanoseconds.
//!
//! The batch pipeline takes quantiles from a sorted copy of the sample
//! ([`probenet_stats::Ecdf`]); the streaming layer cannot afford the O(n)
//! memory, and the classic streaming quantile estimators (P², GK) do not
//! merge associatively — merging marker states is neither exact nor
//! order-independent, which would break the collector's determinism
//! contract. This sketch trades a documented, bounded relative error for an
//! exactly associative merge: values are binned into HDR-histogram-style
//! log-linear buckets whose counts are plain `u64`s, so `merge` is integer
//! addition in any grouping or order.
//!
//! Layout (`SUB_BITS = 7`): values below 128 get one bucket each (exact);
//! larger values share a bucket with all values having the same
//! most-significant bit and the same next 7 bits. Every bucket's width is
//! at most `lower_bound / 128`, so any reported quantile is within a
//! relative `2⁻⁷ ≈ 0.8 %` of the true nearest-rank sample. No floating
//! point and no `log` calls are involved, so bucket indices are identical
//! on every host — the cross-host golden-snapshot stability the rest of the
//! repo pins for simulator output extends to sketches.

use serde::{Deserialize, Serialize};

/// Sub-bucket resolution: buckets per octave, as a power of two.
const SUB_BITS: u32 = 7;
/// Values below this are their own bucket (exact).
const LINEAR_MAX: u64 = 1 << SUB_BITS; // 128
/// The densest possible sketch: the linear range plus one group of
/// `2^SUB_BITS` sub-buckets per remaining octave of the `u64` range.
const MAX_BUCKETS: usize = LINEAR_MAX as usize + (64 - SUB_BITS as usize) * LINEAR_MAX as usize;

/// Mergeable log-linear quantile sketch over `u64` samples (nanoseconds in
/// this workspace). Memory is O(1): at most 7 424 buckets (≈58 KiB) cover
/// the full `u64` range, grown lazily from the front.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogQuantileSketch {
    counts: Vec<u64>,
    total: u64,
}

/// The bucket a value falls into.
fn bucket_of(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let g = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (LINEAR_MAX - 1)) as usize;
    LINEAR_MAX as usize + (g << SUB_BITS) + sub
}

/// The smallest value mapping to bucket `idx` — the sketch's reported
/// quantile value. For `idx < 256` this is `idx` itself (the linear range
/// and the first octave are exact).
fn bucket_lower(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        return idx as u64;
    }
    let off = idx - LINEAR_MAX as usize;
    let g = off >> SUB_BITS;
    let sub = (off & (LINEAR_MAX as usize - 1)) as u64;
    (LINEAR_MAX + sub) << g
}

impl LogQuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn push(&mut self, v: u64) {
        let b = bucket_of(v);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The raw bucket counts, for serialization. The total is always the
    /// sum of the counts, so the counts alone round-trip a sketch exactly.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuild a sketch from raw bucket counts.
    ///
    /// Total: rejects (with overflow-checked summation) any counts vector
    /// no sequence of `push`/`merge` calls could have produced — more
    /// buckets than the layout has, or trailing empty buckets, which both
    /// operations trim by construction.
    pub fn from_counts(counts: Vec<u64>) -> Result<Self, &'static str> {
        if counts.len() > MAX_BUCKETS {
            return Err("sketch: more buckets than the layout has");
        }
        if counts.last() == Some(&0) {
            return Err("sketch: trailing empty bucket");
        }
        let mut total = 0u64;
        for &c in &counts {
            total = total.checked_add(c).ok_or("sketch: count overflow")?;
        }
        Ok(LogQuantileSketch { counts, total })
    }

    /// Fold `other` into `self`. Exact and associative: bucket counts are
    /// integer sums, so any merge tree over the same pushes yields the same
    /// sketch.
    pub fn merge(&mut self, other: &LogQuantileSketch) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method, or `None`
    /// for an empty sketch. The returned value is the lower bound of the
    /// bucket holding the nearest-rank sample, hence within a relative
    /// `2⁻⁷` below the exact batch quantile (and never above it).
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile level out of range");
        if self.total == 0 {
            return None;
        }
        // Nearest rank, exactly as Ecdf::quantile: ceil(q·n) clamped to
        // [1, n], with q = 0 meaning the minimum.
        let rank = if q == 0.0 {
            1
        } else {
            ((q * self.total as f64).ceil() as u64).clamp(1, self.total)
        };
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_lower(i));
            }
        }
        unreachable!("total is the sum of bucket counts");
    }

    /// Upper bound on the relative error of [`LogQuantileSketch::quantile`].
    pub const RELATIVE_ERROR: f64 = 1.0 / LINEAR_MAX as f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut s = LogQuantileSketch::new();
        for v in [0u64, 1, 5, 127, 200, 255] {
            s.push(v);
        }
        assert_eq!(s.quantile(0.0), Some(0));
        // Values < 256 round-trip exactly (linear range + first octave).
        assert_eq!(s.quantile(1.0), Some(255));
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut s = LogQuantileSketch::new();
        let data: Vec<u64> = (0..10_000).map(|i| 1_000_000 + i * 137).collect();
        for &v in &data {
            s.push(v);
        }
        let mut sorted = data.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let rank = if q == 0.0 {
                1
            } else {
                ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len())
            };
            let exact = sorted[rank - 1] as f64;
            let approx = s.quantile(q).unwrap() as f64;
            assert!(
                approx <= exact + 0.5,
                "q {q}: approx {approx} > exact {exact}"
            );
            assert!(
                (exact - approx) / exact <= LogQuantileSketch::RELATIVE_ERROR + 1e-12,
                "q {q}: approx {approx} exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_sequential() {
        let mut all = LogQuantileSketch::new();
        let mut a = LogQuantileSketch::new();
        let mut b = LogQuantileSketch::new();
        for i in 0..5_000u64 {
            let v = i.wrapping_mul(0x9e3779b97f4a7c15) >> 20;
            all.push(v);
            if i % 2 == 0 {
                a.push(v)
            } else {
                b.push(v)
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn bucket_lower_inverts_bucket_of() {
        for v in [0u64, 1, 127, 128, 255, 256, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            let lo = bucket_lower(b);
            assert!(lo <= v, "v {v} bucket {b} lower {lo}");
            assert_eq!(bucket_of(lo), b);
            // Width bound: lower is within a factor (1 + 2^-7) of v.
            assert!((v - lo) as f64 <= lo as f64 / 128.0 + 1.0, "v {v} lo {lo}");
        }
    }
}
