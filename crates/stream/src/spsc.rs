//! A bounded single-producer/single-consumer channel with *accounted*
//! backpressure.
//!
//! The collector's contract is that no record is ever dropped silently: a
//! producer either blocks until there is room ([`Producer::send`]) or takes
//! an explicit rejection that increments a shared drop counter
//! ([`Producer::offer`]). The consumer can read that counter at any time,
//! and the collector surfaces it in every report — an assertable invariant
//! (`pushed_ok + dropped == produced`) rather than a log line.
//!
//! Implementation note: this is a mutex-and-condvar ring, not a lock-free
//! queue — the workspace forbids `unsafe`, and at the record sizes involved
//! (24 bytes) a `VecDeque` behind a `Mutex` sustains well over the 1M
//! records/sec aggregate the acceptance bar asks for, because producers and
//! the consumer exchange whole batches per lock acquisition (see
//! [`Consumer::drain`]).

use std::collections::VecDeque;

// Under `--cfg loom` the synchronisation primitives are swapped for the
// model-checked versions so `tests/loom.rs` can explore every interleaving
// of the ring (see DESIGN.md §12); production builds use std.
#[cfg(loom)]
use loom::sync::{
    atomic::{AtomicU64, Ordering},
    Arc, Condvar, Mutex,
};
#[cfg(not(loom))]
use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc, Condvar, Mutex,
};

struct Inner<T> {
    queue: VecDeque<T>,
    /// Set when the producer has been dropped (no more data will arrive) or
    /// the consumer has been dropped (sends are pointless).
    producer_gone: bool,
    consumer_gone: bool,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    dropped: AtomicU64,
}

/// The sending half. Dropping it closes the channel.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half. Dropping it unblocks any blocked `send`.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
}

/// A bounded SPSC channel of the given capacity (≥ 1).
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity >= 1, "channel capacity must be at least 1");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(capacity),
            producer_gone: false,
            consumer_gone: false,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
        capacity,
        dropped: AtomicU64::new(0),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
        },
        Consumer { shared },
    )
}

impl<T> Producer<T> {
    /// Block until the value is enqueued. Returns `Err(value)` only if the
    /// consumer is gone (the value has nowhere to go).
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        loop {
            if inner.consumer_gone {
                return Err(value);
            }
            if inner.queue.len() < self.shared.capacity {
                inner.queue.push_back(value);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).expect("channel lock");
        }
    }

    /// Non-blocking send. On a full channel (or a departed consumer) the
    /// value is dropped **and counted**: returns `false` and increments the
    /// shared drop counter.
    pub fn offer(&self, value: T) -> bool {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        if inner.consumer_gone || inner.queue.len() >= self.shared.capacity {
            drop(inner);
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        true
    }

    /// Records rejected by [`Producer::offer`] so far.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        inner.producer_gone = true;
        drop(inner);
        self.shared.not_empty.notify_one();
    }
}

impl<T> Consumer<T> {
    /// Move up to `max` queued values into `out`. Returns the number moved.
    /// Never blocks.
    pub fn drain(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        let n = inner.queue.len().min(max);
        out.extend(inner.queue.drain(..n));
        let was_full = inner.queue.len() + n >= self.shared.capacity;
        drop(inner);
        if n > 0 && was_full {
            self.shared.not_full.notify_one();
        }
        n
    }

    /// True once the producer is gone **and** the queue is empty: nothing
    /// more will ever arrive.
    pub fn is_finished(&self) -> bool {
        let inner = self.shared.inner.lock().expect("channel lock");
        inner.producer_gone && inner.queue.is_empty()
    }

    /// Records rejected by the producer's `offer` so far.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel lock");
        inner.consumer_gone = true;
        drop(inner);
        self.shared.not_full.notify_one();
    }
}

// The unit tests drive the ring with real std threads; under `--cfg loom`
// the primitives require a model context, so only `tests/loom.rs` runs.
#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_and_completion() {
        let (tx, rx) = channel::<u32>(4);
        let producer = thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).expect("consumer alive");
            }
        });
        let mut got = Vec::new();
        while !rx.is_finished() {
            if rx.drain(&mut got, 64) == 0 {
                thread::yield_now();
            }
        }
        producer.join().expect("producer");
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
        assert_eq!(rx.dropped(), 0);
    }

    #[test]
    fn offer_counts_drops() {
        let (tx, rx) = channel::<u32>(2);
        assert!(tx.offer(1));
        assert!(tx.offer(2));
        assert!(!tx.offer(3));
        assert!(!tx.offer(4));
        assert_eq!(tx.dropped(), 2);
        let mut out = Vec::new();
        rx.drain(&mut out, 10);
        assert_eq!(out, vec![1, 2]);
        assert!(tx.offer(5));
        assert_eq!(rx.dropped(), 2);
    }

    #[test]
    fn send_fails_when_consumer_gone() {
        let (tx, rx) = channel::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn blocked_send_wakes_on_drain() {
        let (tx, rx) = channel::<u32>(1);
        tx.send(0).unwrap();
        let producer = thread::spawn(move || tx.send(1));
        let mut out = Vec::new();
        while rx.drain(&mut out, 8) == 0 {
            thread::yield_now();
        }
        // The blocked send completes once space opened up.
        producer.join().expect("join").expect("consumer alive");
        while !rx.is_finished() {
            rx.drain(&mut out, 8);
        }
        assert_eq!(out, vec![0, 1]);
    }
}
