//! Streaming loss-process characterization: Bolot's `ulp` / `clp` / `plg`
//! triple, run-length distribution, and randomness tests — from O(1) state.
//!
//! Everything the batch analyzer (`probenet_core::analyze_loss_flags`)
//! derives from a loss indicator sequence is a function of a small segment
//! summary: total counts, the four lag-1 transition counts, and the loss
//! runs split into *boundary* runs (touching the segment's ends, which may
//! still grow or fuse when segments are concatenated) and *interior* runs
//! (closed on both sides, immutable). That summary forms a monoid: two
//! adjacent segments merge by adding counts, adding the junction transition
//! pair, and fusing the left segment's tail run with the right segment's
//! head run. Because every retained quantity is an integer, `merge` is
//! **exact and associative** — the collector can fold per-session segments
//! in any grouping and reproduce the batch analysis byte-for-byte.

use probenet_stats::{lag1_independence_from_counts, runs_test_from_counts};
use serde::{Deserialize, Serialize};

/// Online loss-process estimator over a loss indicator stream
/// (`true` = probe lost). Push flags in sequence order; `snapshot()`
/// reproduces the batch `analyze_loss_flags` output exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamingLoss {
    sent: u64,
    lost: u64,
    /// Lag-1 transition counts (`0` = delivered, `1` = lost).
    n00: u64,
    n01: u64,
    n10: u64,
    n11: u64,
    /// First / last flag of the segment (`None` when empty).
    first: Option<bool>,
    last: Option<bool>,
    /// Length of the loss run starting at the segment's first record, once
    /// a delivered record has closed it. Zero while the segment is all-lost
    /// (the run is still the tail run) or when the segment starts delivered.
    head_run: u64,
    /// Length of the loss run ending at the segment's last record (zero
    /// when the last record was delivered).
    tail_run: u64,
    /// Interior maximal runs: `closed[k]` = number of runs of `k + 1`
    /// consecutive losses with a delivered record on both sides.
    closed: Vec<u64>,
}

/// Snapshot of [`StreamingLoss`]: the same quantities, same `None`
/// conventions, and (for counts and ratios) the same bit patterns as the
/// batch `LossAnalysis`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LossSnapshot {
    /// Probes sent.
    pub sent: usize,
    /// Probes lost.
    pub lost: usize,
    /// Unconditional loss probability.
    pub ulp: f64,
    /// Conditional loss probability `P(loss_{n+1} | loss_n)`.
    pub clp: Option<f64>,
    /// Mean observed loss-run length.
    pub plg_measured: Option<f64>,
    /// Palm prediction `1 / (1 − clp)`.
    pub plg_palm: Option<f64>,
    /// `run_lengths[k]` = number of maximal runs of exactly `k + 1` losses.
    pub run_lengths: Vec<usize>,
    /// Wald–Wolfowitz runs test on the indicator sequence.
    pub runs_test: Option<RunsTestSnapshot>,
    /// χ² lag-1 independence test.
    pub lag1_test: Option<Chi2Snapshot>,
}

/// Serializable runs-test summary (mirrors the batch `RunsTestSummary`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunsTestSnapshot {
    /// Observed runs.
    pub runs: usize,
    /// Expected runs under independence.
    pub expected: f64,
    /// z-score.
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Serializable χ² summary (mirrors the batch `Chi2Summary`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Chi2Snapshot {
    /// χ²(1) statistic.
    pub statistic: f64,
    /// p-value.
    pub p_value: f64,
}

/// The raw [`StreamingLoss`] segment summary: exactly the internal fields,
/// exposed so the wire layer can round-trip an estimator bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LossWireState {
    /// Probes seen.
    pub sent: u64,
    /// Probes lost.
    pub lost: u64,
    /// Lag-1 `delivered → delivered` transitions.
    pub n00: u64,
    /// Lag-1 `delivered → lost` transitions.
    pub n01: u64,
    /// Lag-1 `lost → delivered` transitions.
    pub n10: u64,
    /// Lag-1 `lost → lost` transitions.
    pub n11: u64,
    /// First flag of the segment (`None` when empty).
    pub first: Option<bool>,
    /// Last flag of the segment (`None` when empty).
    pub last: Option<bool>,
    /// Closed loss run starting at the segment's first record.
    pub head_run: u64,
    /// Open loss run ending at the segment's last record.
    pub tail_run: u64,
    /// Interior runs: `closed[k]` runs of `k + 1` consecutive losses.
    pub closed: Vec<u64>,
}

impl StreamingLoss {
    /// An empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Probes seen so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Losses seen so far.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Record the next probe's outcome (`true` = lost).
    pub fn push(&mut self, lost: bool) {
        if let Some(prev) = self.last {
            match (prev, lost) {
                (false, false) => self.n00 += 1,
                (false, true) => self.n01 += 1,
                (true, false) => self.n10 += 1,
                (true, true) => self.n11 += 1,
            }
        }
        if self.first.is_none() {
            self.first = Some(lost);
        }
        if lost {
            self.lost += 1;
            self.tail_run += 1;
        } else if self.tail_run > 0 {
            // A maximal loss run just closed. The run that began at record
            // zero becomes the head run (it can still fuse leftward in a
            // merge); anything later is interior and immutable.
            if self.first == Some(true) && self.head_run == 0 {
                self.head_run = self.tail_run;
            } else {
                self.close_run(self.tail_run);
            }
            self.tail_run = 0;
        }
        self.sent += 1;
        self.last = Some(lost);
    }

    fn close_run(&mut self, len: u64) {
        let idx = (len - 1) as usize;
        if idx >= self.closed.len() {
            self.closed.resize(idx + 1, 0);
        }
        self.closed[idx] += 1;
    }

    /// Fold `other` — the summary of the records immediately following this
    /// segment — into `self`. Exact and associative.
    pub fn merge(&mut self, other: &StreamingLoss) {
        if other.sent == 0 {
            return;
        }
        if self.sent == 0 {
            *self = other.clone();
            return;
        }
        // Junction transition: self's last record is adjacent to other's
        // first.
        let junction = (
            self.last.expect("sent > 0 implies a last record"),
            other.first.expect("sent > 0 implies a first record"),
        );
        match junction {
            (false, false) => self.n00 += 1,
            (false, true) => self.n01 += 1,
            (true, false) => self.n10 += 1,
            (true, true) => self.n11 += 1,
        }
        self.n00 += other.n00;
        self.n01 += other.n01;
        self.n10 += other.n10;
        self.n11 += other.n11;

        // Run fusion across the junction. An all-lost segment is one still
        // open run (head_run 0, tail_run = sent).
        let a_all_lost = self.lost == self.sent;
        let b_all_lost = other.lost == other.sent;
        match (a_all_lost, b_all_lost) {
            (true, true) => {
                self.tail_run = self.sent + other.sent;
            }
            (true, false) => {
                // Self's single open run fuses with other's head region and
                // is closed by other's first delivered record.
                self.head_run = self.sent + other.head_run;
                self.tail_run = other.tail_run;
            }
            (false, true) => {
                self.tail_run += other.sent;
            }
            (false, false) => {
                let fused = self.tail_run + other.head_run;
                if fused > 0 {
                    self.close_run(fused);
                }
                self.tail_run = other.tail_run;
            }
        }
        for (i, &c) in other.closed.iter().enumerate() {
            if c > 0 {
                if i >= self.closed.len() {
                    self.closed.resize(i + 1, 0);
                }
                self.closed[i] += c;
            }
        }

        self.sent += other.sent;
        self.lost += other.lost;
        self.last = other.last;
    }

    /// The raw segment-summary state, for serialization. Field-for-field
    /// with the internal representation (including any trailing zeros in
    /// the closed-run vector), so `from_wire_state(wire_state())` is exact.
    pub fn wire_state(&self) -> LossWireState {
        LossWireState {
            sent: self.sent,
            lost: self.lost,
            n00: self.n00,
            n01: self.n01,
            n10: self.n10,
            n11: self.n11,
            first: self.first,
            last: self.last,
            head_run: self.head_run,
            tail_run: self.tail_run,
            closed: self.closed.clone(),
        }
    }

    /// Rebuild from a previously captured [`LossWireState`].
    ///
    /// Total: every segment-summary invariant the monoid maintains is
    /// re-checked (with overflow-checked arithmetic), so a hostile state
    /// either comes back `Err` or yields an estimator whose `snapshot()`
    /// and `merge()` behave exactly like one built by `push()`.
    pub fn from_wire_state(s: LossWireState) -> Result<Self, &'static str> {
        if s.sent == 0 {
            let canonical = s.lost == 0
                && s.n00 == 0
                && s.n01 == 0
                && s.n10 == 0
                && s.n11 == 0
                && s.first.is_none()
                && s.last.is_none()
                && s.head_run == 0
                && s.tail_run == 0
                && s.closed.is_empty();
            return if canonical {
                Ok(StreamingLoss::default())
            } else {
                Err("loss: non-canonical empty state")
            };
        }
        let (first, last) = match (s.first, s.last) {
            (Some(f), Some(l)) => (f, l),
            _ => return Err("loss: missing boundary flags"),
        };
        if s.lost > s.sent {
            return Err("loss: lost exceeds sent");
        }
        // Lag-1 transitions: exactly one per adjacent pair.
        let transitions = s
            .n00
            .checked_add(s.n01)
            .and_then(|t| t.checked_add(s.n10))
            .and_then(|t| t.checked_add(s.n11))
            .ok_or("loss: transition count overflow")?;
        if transitions != s.sent - 1 {
            return Err("loss: transition count mismatch");
        }
        // Every lost record either opens the segment or follows a
        // transition into the loss state — and dually for deliveries.
        if s.n01 + s.n11 + u64::from(first) != s.lost {
            return Err("loss: loss-entry count mismatch");
        }
        if s.n00 + s.n10 + u64::from(!first) != s.sent - s.lost {
            return Err("loss: delivery-entry count mismatch");
        }
        // Boundary runs are consistent with the boundary flags.
        if (s.tail_run > 0) != last {
            return Err("loss: tail run disagrees with last flag");
        }
        if !first && s.head_run != 0 {
            return Err("loss: head run without a leading loss");
        }
        let all_lost = s.lost == s.sent;
        if all_lost {
            // One still-open run spanning the whole segment.
            if s.head_run != 0 || s.tail_run != s.sent || !s.closed.is_empty() {
                return Err("loss: all-lost run accounting mismatch");
            }
        } else if first && s.head_run == 0 {
            return Err("loss: leading loss run never closed");
        }
        // Every loss belongs to exactly one run: head + tail + interior.
        let mut run_losses = s
            .head_run
            .checked_add(s.tail_run)
            .ok_or("loss: run length overflow")?;
        for (i, &c) in s.closed.iter().enumerate() {
            let len = (i as u64)
                .checked_add(1)
                .and_then(|l| l.checked_mul(c))
                .ok_or("loss: run length overflow")?;
            run_losses = run_losses
                .checked_add(len)
                .ok_or("loss: run length overflow")?;
        }
        if run_losses != s.lost {
            return Err("loss: run mass mismatch");
        }
        Ok(StreamingLoss {
            sent: s.sent,
            lost: s.lost,
            n00: s.n00,
            n01: s.n01,
            n10: s.n10,
            n11: s.n11,
            first: s.first,
            last: s.last,
            head_run: s.head_run,
            tail_run: s.tail_run,
            closed: s.closed,
        })
    }

    /// Current loss metrics — bit-identical to
    /// `probenet_core::analyze_loss_flags` over the pushed sequence.
    pub fn snapshot(&self) -> LossSnapshot {
        let sent = self.sent as usize;
        let lost = self.lost as usize;
        let ulp = if sent == 0 {
            0.0
        } else {
            lost as f64 / sent as f64
        };

        let cond_base = self.n10 + self.n11;
        let clp = if cond_base == 0 {
            None
        } else {
            Some(self.n11 as f64 / cond_base as f64)
        };
        let plg_palm = clp.and_then(|c| if c < 1.0 { Some(1.0 / (1.0 - c)) } else { None });

        // Reassemble the run-length distribution: interior runs plus the two
        // boundary runs (for the full sequence those are ordinary maximal
        // runs — nothing left to fuse with).
        let mut runs_by_len: Vec<usize> = self.closed.iter().map(|&c| c as usize).collect();
        let mut add_run = |len: u64| {
            if len > 0 {
                let idx = (len - 1) as usize;
                if idx >= runs_by_len.len() {
                    runs_by_len.resize(idx + 1, 0);
                }
                runs_by_len[idx] += 1;
            }
        };
        add_run(self.head_run);
        add_run(self.tail_run);
        while runs_by_len.last() == Some(&0) {
            runs_by_len.pop();
        }
        let num_runs = runs_by_len.iter().sum::<usize>();
        // Every loss belongs to exactly one maximal run, so the batch
        // sum-of-run-lengths is exactly `lost`.
        let plg_measured = if num_runs == 0 {
            None
        } else {
            Some(lost as f64 / num_runs as f64)
        };

        // Wald–Wolfowitz runs (runs of equal values, both kinds): one run
        // plus one per adjacent unequal pair.
        let ww_runs = (1 + self.n01 + self.n10) as usize;
        let runs_test =
            runs_test_from_counts(lost, sent - lost, ww_runs).map(|r| RunsTestSnapshot {
                runs: r.runs,
                expected: r.expected,
                z: r.z,
                p_value: r.p_value,
            });
        let lag1_test =
            lag1_independence_from_counts(self.n00, self.n01, self.n10, self.n11).map(|t| {
                Chi2Snapshot {
                    statistic: t.statistic,
                    p_value: t.p_value,
                }
            });

        LossSnapshot {
            sent,
            lost,
            ulp,
            clp,
            plg_measured,
            plg_palm,
            run_lengths: runs_by_len,
            runs_test,
            lag1_test,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference reimplementation of the batch analyzer's run accounting
    /// (can't depend on probenet-core here — that would be a cycle).
    fn batch_runs(flags: &[bool]) -> Vec<usize> {
        let mut raw = Vec::new();
        let mut cur = 0usize;
        for &f in flags {
            if f {
                cur += 1;
            } else if cur > 0 {
                raw.push(cur);
                cur = 0;
            }
        }
        if cur > 0 {
            raw.push(cur);
        }
        let max = raw.iter().copied().max().unwrap_or(0);
        let mut out = vec![0usize; max];
        for r in raw {
            out[r - 1] += 1;
        }
        out
    }

    fn lcg_flags(n: usize, p: f64, seed: u64) -> Vec<bool> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) < p
            })
            .collect()
    }

    #[test]
    fn matches_batch_run_accounting() {
        for (n, p, seed) in [(0, 0.0, 1), (1, 1.0, 2), (500, 0.3, 3), (500, 0.9, 4)] {
            let flags = lcg_flags(n, p, seed);
            let mut s = StreamingLoss::new();
            for &f in &flags {
                s.push(f);
            }
            let snap = s.snapshot();
            assert_eq!(snap.run_lengths, batch_runs(&flags), "n={n} p={p}");
            assert_eq!(snap.lost, flags.iter().filter(|&&b| b).count());
        }
    }

    #[test]
    fn merge_equals_sequential_at_every_split() {
        let flags = lcg_flags(200, 0.4, 7);
        let mut whole = StreamingLoss::new();
        for &f in &flags {
            whole.push(f);
        }
        for split in 0..=flags.len() {
            let mut a = StreamingLoss::new();
            let mut b = StreamingLoss::new();
            for &f in &flags[..split] {
                a.push(f);
            }
            for &f in &flags[split..] {
                b.push(f);
            }
            a.merge(&b);
            // closed vecs may differ in trailing zeros; compare snapshots
            // and the raw counters that matter.
            assert_eq!(a.sent, whole.sent, "split {split}");
            assert_eq!(
                serde_json::to_string(&a.snapshot()).unwrap(),
                serde_json::to_string(&whole.snapshot()).unwrap(),
                "split {split}"
            );
        }
    }

    #[test]
    fn all_lost_and_all_delivered() {
        let mut all_lost = StreamingLoss::new();
        for _ in 0..10 {
            all_lost.push(true);
        }
        let snap = all_lost.snapshot();
        assert_eq!(snap.ulp, 1.0);
        assert_eq!(snap.clp, Some(1.0));
        assert_eq!(snap.plg_palm, None);
        assert_eq!(snap.plg_measured, Some(10.0));
        assert_eq!(snap.run_lengths, vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1]);

        let mut ok = StreamingLoss::new();
        for _ in 0..10 {
            ok.push(false);
        }
        let snap = ok.snapshot();
        assert_eq!(snap.lost, 0);
        assert_eq!(snap.clp, None);
        assert!(snap.run_lengths.is_empty());
    }
}
