//! The unit of streaming ingest: one probe observation, and the key that
//! names the session it belongs to.

use serde::{Deserialize, Serialize};

/// One probe observation, as fed to the streaming estimators.
///
/// This is the minimal projection of `probenet_netdyn::RttRecord` the
/// online analysis needs: the sequence number (records must be pushed in
/// sequence order within a session), the nominal send instant, and the
/// measured round trip (`None` = lost, the paper's `rtt_n = 0` events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Probe sequence number `n`.
    pub seq: u64,
    /// Nominal send instant (`n · δ`), nanoseconds.
    pub sent_at_ns: u64,
    /// Measured round trip in nanoseconds, `None` if the probe never
    /// returned.
    pub rtt_ns: Option<u64>,
}

/// The identity of one concurrent probe session: which path was probed, at
/// what interval, under which seed. Keys order lexicographically
/// (path, δ, seed), which is the deterministic order collector reports use.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionKey {
    /// Path or scenario name (e.g. `"bursty-transatlantic"`).
    pub path: String,
    /// Probe interval δ in nanoseconds.
    pub delta_ns: u64,
    /// Seed of the run.
    pub seed: u64,
}

impl SessionKey {
    /// A key from a scenario name, δ in milliseconds, and seed.
    pub fn new(path: impl Into<String>, delta_ms: u64, seed: u64) -> Self {
        SessionKey {
            path: path.into(),
            delta_ns: delta_ms * 1_000_000,
            seed,
        }
    }

    /// A mesh shard key: `(src, dst, δ, seed)`, with the vantage pair
    /// embedded in the path component as `mesh/hSS->hDD`. Every vantage
    /// host of a mesh campaign shards its sessions under these keys, so
    /// fleet-merged reports sort pairs lexicographically per mesh.
    pub fn mesh(mesh: impl Into<String>, src: usize, dst: usize, delta_ms: u64, seed: u64) -> Self {
        SessionKey::new(
            format!("{}/h{src:02}->h{dst:02}", mesh.into()),
            delta_ms,
            seed,
        )
    }

    /// δ in milliseconds (lossless for millisecond-grained intervals).
    pub fn delta_ms(&self) -> f64 {
        self.delta_ns as f64 / 1e6
    }
}

impl std::fmt::Display for SessionKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/delta{}ms/seed{}",
            self.path,
            self.delta_ms(),
            self.seed
        )
    }
}
