//! One-way delay analysis — the measurement the paper could *not* make.
//!
//! The paper's §2 explains that with geographically distant hosts "their
//! local clocks may not be synchronized and hence the timestamps in the UDP
//! probe packets would be difficult to interpret", which is why it analyzes
//! only round trips. Inside the simulator every host shares one clock, so
//! the three NetDyn timestamps decompose each RTT into its outbound and
//! inbound halves — quantifying exactly the directional asymmetry the
//! round-trip view averages away.

use probenet_netdyn::RttSeries;
use probenet_stats::{correlation, Moments};
use serde::{Deserialize, Serialize};

/// Summary of one direction's delays.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DirectionSummary {
    /// Mean delay, ms.
    pub mean_ms: f64,
    /// Standard deviation, ms.
    pub std_ms: f64,
    /// Minimum observed, ms — the direction's fixed component.
    pub min_ms: f64,
    /// Maximum observed, ms.
    pub max_ms: f64,
}

fn summarize(xs: impl Iterator<Item = f64>) -> DirectionSummary {
    let mut m = Moments::new();
    for x in xs {
        m.push(x);
    }
    DirectionSummary {
        mean_ms: m.mean(),
        std_ms: m.std_dev(),
        min_ms: m.min(),
        max_ms: m.max(),
    }
}

/// One-way delay decomposition of an experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OwdAnalysis {
    /// Probes with echo timestamps (the sample size).
    pub samples: usize,
    /// Source → echo direction.
    pub outbound: DirectionSummary,
    /// Echo → source direction.
    pub inbound: DirectionSummary,
    /// Mean queueing asymmetry: mean outbound queueing minus mean inbound
    /// queueing (each direction's mean minus its own minimum), ms.
    /// Positive = the outbound direction carries more queueing.
    pub queueing_asymmetry_ms: f64,
    /// Pearson correlation between a probe's outbound and inbound delays.
    /// Near zero when the two directions' queues are independent — which is
    /// why round-trip measurements can't be halved to get one-way delays.
    pub direction_correlation: f64,
}

/// Decompose an experiment's delays by direction. Returns `None` when no
/// probe carries an echo timestamp (e.g. unsynchronized real-path data).
pub fn analyze_owd(series: &RttSeries) -> Option<OwdAnalysis> {
    let pairs = series.one_way_delays_ms();
    if pairs.is_empty() {
        return None;
    }
    let outs: Vec<f64> = pairs.iter().map(|&(o, _)| o).collect();
    let backs: Vec<f64> = pairs.iter().map(|&(_, b)| b).collect();
    let outbound = summarize(outs.iter().copied());
    let inbound = summarize(backs.iter().copied());
    Some(OwdAnalysis {
        samples: pairs.len(),
        outbound,
        inbound,
        queueing_asymmetry_ms: (outbound.mean_ms - outbound.min_ms)
            - (inbound.mean_ms - inbound.min_ms),
        direction_correlation: correlation(&outs, &backs),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PaperScenario;
    use probenet_netdyn::{ExperimentConfig, RttRecord, RttSeries};
    use probenet_sim::SimDuration;

    fn scenario_series(seed: u64) -> RttSeries {
        let sc = PaperScenario::inria_umd(seed);
        let cfg = ExperimentConfig::paper(SimDuration::from_millis(20))
            .with_count(3000)
            .with_clock(SimDuration::ZERO);
        sc.run(&cfg).series
    }

    #[test]
    fn decomposition_sums_to_rtt() {
        let series = scenario_series(1);
        let pairs = series.one_way_delays_ms();
        let rtts = series.delivered_rtts_ms();
        assert_eq!(pairs.len(), rtts.len());
        for ((o, b), r) in pairs.iter().zip(&rtts) {
            assert!((o + b - r).abs() < 1e-6, "out {o} + back {b} != rtt {r}");
        }
    }

    #[test]
    fn asymmetric_load_shows_up_in_owd() {
        // The calibrated scenario loads the bottleneck 62% outbound vs 20%
        // inbound: outbound queueing must dominate.
        let a = analyze_owd(&scenario_series(2)).expect("echo stamps in sim");
        assert!(a.samples > 1000);
        assert!(
            a.queueing_asymmetry_ms > 5.0,
            "asymmetry {} ms with 62/20 load split",
            a.queueing_asymmetry_ms
        );
        let out_queue = a.outbound.mean_ms - a.outbound.min_ms;
        let in_queue = a.inbound.mean_ms - a.inbound.min_ms;
        assert!(
            out_queue > 2.0 * in_queue,
            "outbound queueing {out_queue} vs inbound {in_queue}"
        );
    }

    #[test]
    fn directions_are_weakly_correlated() {
        // Independent cross-traffic streams drive the two directions; a
        // probe's outbound and inbound delays should be nearly independent.
        let a = analyze_owd(&scenario_series(3)).expect("echo stamps");
        assert!(
            a.direction_correlation.abs() < 0.35,
            "direction correlation {}",
            a.direction_correlation
        );
    }

    #[test]
    fn minimums_match_path_geometry() {
        let series = scenario_series(4);
        let a = analyze_owd(&series).expect("echo stamps");
        // The INRIA-UMd path is symmetric in its fixed components: the two
        // directional minimums are close and sum to the series' RTT floor.
        let floor = series.min_rtt_ms().expect("deliveries");
        assert!(
            (a.outbound.min_ms + a.inbound.min_ms - floor).abs() < 1.0,
            "out {} + in {} vs floor {floor}",
            a.outbound.min_ms,
            a.inbound.min_ms
        );
        assert!((a.outbound.min_ms - a.inbound.min_ms).abs() < 2.0);
    }

    #[test]
    fn no_echo_stamps_yields_none() {
        let series = RttSeries::new(
            SimDuration::from_millis(20),
            72,
            SimDuration::ZERO,
            vec![RttRecord {
                seq: 0,
                sent_at: 0,
                echoed_at: None,
                rtt: Some(150_000_000),
            }],
        );
        assert!(analyze_owd(&series).is_none());
    }
}
