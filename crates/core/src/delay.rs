//! Delay-distribution characterization.
//!
//! Mukherjee's companion study (the paper's ref \[19\]) found that end-to-end
//! delay distributions are "best modeled by a constant plus gamma
//! distribution, where the parameters of the gamma distribution depend on
//! the path and the time of the day". This module fits that model to a
//! probe series and scores it, and computes the loss–delay dependence that
//! the same reference reports ("packet losses … are positively correlated
//! with various statistics of delay").

use probenet_netdyn::RttSeries;
use probenet_stats::{correlation, Ecdf, Moments, ShiftedGammaFit};
use serde::{Deserialize, Serialize};

/// Summary of a fitted constant-plus-gamma delay model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DelayFit {
    /// The constant offset (fixed path delay), ms.
    pub shift_ms: f64,
    /// Gamma shape parameter k.
    pub shape: f64,
    /// Gamma scale parameter θ, ms.
    pub scale_ms: f64,
    /// Kolmogorov–Smirnov distance between the fit and the empirical CDF.
    pub ks_distance: f64,
}

/// Full delay-distribution analysis of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DelayAnalysis {
    /// Delivered probes analyzed.
    pub samples: usize,
    /// Sample mean, ms.
    pub mean_ms: f64,
    /// Sample standard deviation, ms.
    pub std_ms: f64,
    /// Minimum (fixed component estimate), ms.
    pub min_ms: f64,
    /// Median, ms.
    pub median_ms: f64,
    /// 95th percentile, ms — what a playback buffer must absorb (the
    /// paper's §1: "the shape of the delay distribution is crucial for the
    /// proper sizing of playback buffers").
    pub p95_ms: f64,
    /// The constant-plus-gamma fit, if the data admits one.
    pub fit: Option<DelayFit>,
}

/// Fit and summarize the delivered-RTT distribution. Returns `None` when
/// fewer than 10 probes were delivered.
pub fn analyze_delay_distribution(series: &RttSeries) -> Option<DelayAnalysis> {
    let rtts = series.delivered_rtts_ms();
    if rtts.len() < 10 {
        return None;
    }
    let m = Moments::from_slice(&rtts);
    let ecdf = Ecdf::new(&rtts);
    let fit = if m.std_dev() > 0.0 {
        let f = ShiftedGammaFit::fit(&rtts);
        let ks = ecdf.ks_statistic(|x| f.cdf(x));
        Some(DelayFit {
            shift_ms: f.shift,
            shape: f.gamma.shape,
            scale_ms: f.gamma.scale,
            ks_distance: ks,
        })
    } else {
        None
    };
    Some(DelayAnalysis {
        samples: rtts.len(),
        mean_ms: m.mean(),
        std_ms: m.std_dev(),
        min_ms: m.min(),
        median_ms: ecdf.median(),
        p95_ms: ecdf.quantile(0.95),
        fit,
    })
}

/// Playback-buffer sizing: the smallest delay budget (ms above the minimum
/// RTT) that keeps the late-packet fraction at or below `loss_budget`
/// among **delivered** probes. The paper motivates exactly this: "the
/// shape of the delay distribution is crucial for the proper sizing of
/// playback buffers".
pub fn playback_buffer_ms(series: &RttSeries, loss_budget: f64) -> Option<f64> {
    assert!(
        (0.0..1.0).contains(&loss_budget),
        "loss budget must be in [0,1)"
    );
    let rtts = series.delivered_rtts_ms();
    if rtts.is_empty() {
        return None;
    }
    let ecdf = Ecdf::new(&rtts);
    let min = series.min_rtt_ms().expect("non-empty");
    Some(ecdf.quantile(1.0 - loss_budget) - min)
}

/// Point-biserial correlation between the loss indicator of probe `n` and
/// the most recent delivered RTT before it. Positive values mean losses
/// follow congestion (queue-overflow losses); near-zero means losses are
/// delay-independent (random drops). Returns `None` when either variable
/// is degenerate.
pub fn loss_delay_correlation(series: &RttSeries) -> Option<f64> {
    let mut losses: Vec<f64> = Vec::new();
    let mut delays: Vec<f64> = Vec::new();
    let mut last_rtt: Option<f64> = None;
    for r in &series.records {
        match (r.rtt, last_rtt) {
            (Some(ns), _) => {
                if let Some(prev) = last_rtt {
                    losses.push(0.0);
                    delays.push(prev);
                }
                last_rtt = Some(ns as f64 / 1e6);
            }
            (None, Some(prev)) => {
                losses.push(1.0);
                delays.push(prev);
            }
            (None, None) => {}
        }
    }
    if losses.len() < 10 {
        return None;
    }
    let c = correlation(&losses, &delays);
    if c == 0.0 && losses.iter().all(|&l| l == losses[0]) {
        return None;
    }
    Some(c)
}

/// Conditional loss probability given that the previous delivered RTT was
/// above the series' `q`-quantile, versus the probability given it was
/// below — the concrete form of ref \[19\]'s loss–delay correlation.
///
/// Returns `(p_loss_high_delay, p_loss_low_delay)`, or `None` when either
/// conditioning set is empty.
pub fn loss_given_delay(series: &RttSeries, q: f64) -> Option<(f64, f64)> {
    assert!((0.0..1.0).contains(&q), "quantile must be in [0,1)");
    let rtts = series.delivered_rtts_ms();
    if rtts.is_empty() {
        return None;
    }
    let threshold = Ecdf::new(&rtts).quantile(q);
    let mut high = (0usize, 0usize); // (losses, total)
    let mut low = (0usize, 0usize);
    let mut last_rtt: Option<f64> = None;
    for r in &series.records {
        if let Some(prev) = last_rtt {
            let bucket = if prev >= threshold {
                &mut high
            } else {
                &mut low
            };
            bucket.1 += 1;
            if r.rtt.is_none() {
                bucket.0 += 1;
            }
        }
        if let Some(ns) = r.rtt {
            last_rtt = Some(ns as f64 / 1e6);
        }
    }
    if high.1 == 0 || low.1 == 0 {
        return None;
    }
    Some((high.0 as f64 / high.1 as f64, low.0 as f64 / low.1 as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PaperScenario;
    use probenet_netdyn::{ExperimentConfig, RttRecord};
    use probenet_sim::SimDuration;

    fn scenario_series(delta_ms: u64, count: usize, seed: u64) -> RttSeries {
        let sc = PaperScenario::inria_umd(seed);
        let cfg = ExperimentConfig::paper(SimDuration::from_millis(delta_ms))
            .with_count(count)
            .with_clock(SimDuration::ZERO);
        sc.run(&cfg).series
    }

    fn series_from(rtts: &[Option<f64>]) -> RttSeries {
        let records = rtts
            .iter()
            .enumerate()
            .map(|(n, r)| RttRecord {
                seq: n as u64,
                sent_at: n as u64 * 20_000_000,
                echoed_at: None,
                rtt: r.map(|ms| (ms * 1e6) as u64),
            })
            .collect();
        RttSeries::new(SimDuration::from_millis(20), 72, SimDuration::ZERO, records)
    }

    #[test]
    fn constant_plus_gamma_fits_the_scenario() {
        let series = scenario_series(20, 6000, 1);
        let a = analyze_delay_distribution(&series).expect("enough probes");
        assert!(a.samples > 4000);
        let fit = a.fit.expect("dispersed data");
        // The constant absorbs (most of) the fixed path delay.
        assert!(
            (a.min_ms - 10.0..=a.min_ms).contains(&fit.shift_ms),
            "shift {} vs min {}",
            fit.shift_ms,
            a.min_ms
        );
        assert!(fit.shape > 0.0 && fit.scale_ms > 0.0);
        // The constant-plus-gamma model captures the gross shape. It cannot
        // be exact here: the RTT distribution carries a point mass at the
        // floor (probes finding the bottleneck idle) that no continuous
        // density reproduces, so the KS distance plateaus around that mass.
        assert!(fit.ks_distance < 0.25, "KS {}", fit.ks_distance);
        // Order statistics are coherent.
        assert!(a.min_ms <= a.median_ms && a.median_ms <= a.p95_ms);
    }

    #[test]
    fn playback_buffer_grows_with_stricter_budget() {
        let series = scenario_series(20, 6000, 2);
        let loose = playback_buffer_ms(&series, 0.10).expect("data");
        let strict = playback_buffer_ms(&series, 0.01).expect("data");
        assert!(strict > loose, "strict {strict} loose {loose}");
        assert!(loose > 0.0);
    }

    #[test]
    fn loss_delay_correlation_positive_under_congestion_losses() {
        // δ = 8 ms drives overflow losses, which follow congestion: the
        // correlation must be positive (ref [19]'s observation).
        let series = scenario_series(8, 15_000, 3);
        let c = loss_delay_correlation(&series).expect("losses exist");
        assert!(c > 0.1, "correlation {c}");
        let (p_high, p_low) = loss_given_delay(&series, 0.9).expect("both buckets");
        assert!(
            p_high > 1.5 * p_low,
            "loss after high delay {p_high} vs low {p_low}"
        );
    }

    #[test]
    fn pure_random_losses_show_no_delay_dependence() {
        // Synthetic: constant RTT with iid losses.
        let mut state = 5u64;
        let rtts: Vec<Option<f64>> = (0..20_000)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                if u < 0.1 {
                    None
                } else {
                    Some(150.0 + (i % 13) as f64)
                }
            })
            .collect();
        let series = series_from(&rtts);
        let c = loss_delay_correlation(&series).expect("losses exist");
        assert!(c.abs() < 0.05, "correlation {c}");
        let (p_high, p_low) = loss_given_delay(&series, 0.9).expect("both buckets");
        assert!((p_high - p_low).abs() < 0.03);
    }

    #[test]
    fn degenerate_inputs_are_none() {
        assert!(analyze_delay_distribution(&series_from(&[Some(1.0); 5])).is_none());
        assert!(loss_delay_correlation(&series_from(&[Some(1.0); 50])).is_none());
        assert!(playback_buffer_ms(&series_from(&[None, None]), 0.05).is_none());
    }
}
