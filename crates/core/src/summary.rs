//! One-stop analysis: everything the pipeline knows about a measurement,
//! in one structure — what you run on a series you just collected (real or
//! simulated) to get the paper's §4 and §5 readings at once.

use probenet_netdyn::RttSeries;
use serde::{Deserialize, Serialize};

use crate::delay::{analyze_delay_distribution, loss_delay_correlation, DelayAnalysis};
use crate::loss::{analyze_losses, GilbertModel, LossAnalysis};
use crate::owd::{analyze_owd, OwdAnalysis};
use crate::phase::{BottleneckEstimate, PhasePlot};
use crate::routechange::{detect_route_changes, RouteChange};
use crate::workload::{analyze_workload, WorkloadAnalysis};

/// Basic facts about the measurement itself.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MeasurementSummary {
    /// Probes sent.
    pub sent: usize,
    /// Probes returned.
    pub received: usize,
    /// Probe interval δ, ms.
    pub interval_ms: f64,
    /// Probe wire size, bytes.
    pub wire_bytes: u32,
    /// Clock resolution, ms (0 = ideal).
    pub clock_resolution_ms: f64,
    /// Reordered probe pairs (arrival-order inversions).
    pub reordering: u64,
}

/// Every analysis the pipeline can run on one series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FullReport {
    /// The measurement's vitals.
    pub measurement: MeasurementSummary,
    /// Loss metrics (§5).
    pub loss: LossAnalysis,
    /// Fitted Gilbert loss model, when both states occur.
    pub gilbert: Option<GilbertModel>,
    /// Loss–delay correlation (ref \[19\]), when computable.
    pub loss_delay_correlation: Option<f64>,
    /// Delay distribution summary and constant+gamma fit.
    pub delay: Option<DelayAnalysis>,
    /// Phase-plot bottleneck estimate (§4), when compression exists.
    pub bottleneck: Option<BottleneckEstimate>,
    /// Workload analysis (§4, Figures 8–9) using the estimated or supplied
    /// bottleneck rate; absent when no rate is known.
    pub workload: Option<WorkloadAnalysis>,
    /// One-way decomposition, when echo timestamps exist (simulation, or
    /// synchronized real hosts).
    pub owd: Option<OwdAnalysis>,
    /// Detected RTT baseline shifts (route changes).
    pub route_changes: Vec<RouteChange>,
}

/// Run every applicable analysis. `mu_bps_hint` supplies the bottleneck
/// rate when known; otherwise the phase-plot estimate is used, and the
/// workload analysis is skipped if neither is available. `bulk_bits` is the
/// hypothesized bulk packet size for peak labeling (512 bytes default).
pub fn full_report(series: &RttSeries, mu_bps_hint: Option<f64>) -> FullReport {
    let plot = PhasePlot::from_series(series);
    let bottleneck = plot.bottleneck_estimate(10);
    let mu = mu_bps_hint.or(bottleneck.map(|b| b.mu_bps));
    let delta_ms = series.interval().as_millis_f64();
    let workload =
        mu.map(|mu| analyze_workload(series, mu, 512.0 * 8.0, (4.0 * delta_ms).max(100.0)));
    let flags = series.loss_flags();
    FullReport {
        measurement: MeasurementSummary {
            sent: series.len(),
            received: series.received(),
            interval_ms: delta_ms,
            wire_bytes: series.wire_bytes,
            clock_resolution_ms: series.clock_resolution_ns as f64 / 1e6,
            reordering: series.reordering_count(),
        },
        loss: analyze_losses(series),
        gilbert: GilbertModel::fit(&flags),
        loss_delay_correlation: loss_delay_correlation(series),
        delay: analyze_delay_distribution(series),
        bottleneck,
        workload,
        owd: analyze_owd(series),
        route_changes: detect_route_changes(series, (series.len() / 10).max(50), 10.0),
    }
}

/// Render a report as human-readable text.
pub fn render_report(r: &FullReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let m = &r.measurement;
    let _ = writeln!(
        s,
        "measurement: {} probes at {} ms ({} wire bytes, clock {} ms), {} received, {} reordered pairs",
        m.sent, m.interval_ms, m.wire_bytes, m.clock_resolution_ms, m.received, m.reordering
    );
    let _ = writeln!(
        s,
        "loss: ulp {:.3}, clp {:?}, gap {:?} (Palm {:?}), random? {}",
        r.loss.ulp,
        r.loss.clp,
        r.loss.plg_measured,
        r.loss.plg_palm,
        r.loss.losses_look_random(0.01)
    );
    if let Some(g) = &r.gilbert {
        let _ = writeln!(
            s,
            "gilbert model: p {:.4}, r {:.4} (burst length {:.2})",
            g.p,
            g.r,
            if g.r > 0.0 { 1.0 / g.r } else { f64::NAN }
        );
    }
    if let Some(c) = r.loss_delay_correlation {
        let _ = writeln!(s, "loss-delay correlation: {c:.3}");
    }
    if let Some(d) = &r.delay {
        let _ = writeln!(
            s,
            "delay: min {:.1} / median {:.1} / mean {:.1} / p95 {:.1} ms",
            d.min_ms, d.median_ms, d.mean_ms, d.p95_ms
        );
        if let Some(f) = &d.fit {
            let _ = writeln!(
                s,
                "  constant+gamma fit: shift {:.1} ms, shape {:.2}, scale {:.2} ms (KS {:.3})",
                f.shift_ms, f.shape, f.scale_ms, f.ks_distance
            );
        }
    }
    match &r.bottleneck {
        Some(b) => {
            let _ = writeln!(
                s,
                "bottleneck: {:.1} kb/s from the compression line (intercept {:.1} ms, bounds [{:.0}, {:.0}] kb/s, {} pairs)",
                b.mu_bps / 1e3,
                b.intercept_ms,
                b.mu_lo_bps / 1e3,
                b.mu_hi_bps / 1e3,
                b.compression_points
            );
        }
        None => {
            let _ = writeln!(s, "bottleneck: no probe compression detected");
        }
    }
    if let Some(w) = &r.workload {
        let _ = writeln!(
            s,
            "workload: {} peaks; mean per-interval estimate {:.0} B; inferred bulk packet {:?} B",
            w.peaks.len(),
            w.mean_workload_bytes(),
            w.inferred_bulk_bytes().map(|b| b.round())
        );
    }
    if let Some(o) = &r.owd {
        let _ = writeln!(
            s,
            "one-way: out {:.1}±{:.1} ms vs back {:.1}±{:.1} ms (queueing asymmetry {:+.1} ms)",
            o.outbound.mean_ms,
            o.outbound.std_ms,
            o.inbound.mean_ms,
            o.inbound.std_ms,
            o.queueing_asymmetry_ms
        );
    }
    for c in &r.route_changes {
        let _ = writeln!(
            s,
            "route change at probe {}: {:.1} -> {:.1} ms ({:+.1} ms)",
            c.at_index,
            c.before_ms,
            c.after_ms,
            c.shift_ms()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PaperScenario;
    use probenet_netdyn::ExperimentConfig;
    use probenet_sim::SimDuration;

    fn scenario_series(seed: u64) -> RttSeries {
        let sc = PaperScenario::inria_umd(seed);
        let cfg = ExperimentConfig::paper(SimDuration::from_millis(20))
            .with_count(4500)
            .with_clock(SimDuration::ZERO);
        sc.run(&cfg).series
    }

    #[test]
    fn full_report_populates_every_section_in_simulation() {
        let series = scenario_series(1);
        let r = full_report(&series, None);
        assert_eq!(r.measurement.sent, 4500);
        assert_eq!(r.measurement.reordering, 0);
        assert!(r.loss.ulp > 0.0);
        assert!(r.gilbert.is_some());
        assert!(r.delay.is_some());
        assert!(r.bottleneck.is_some(), "compression expected at 20 ms");
        assert!(r.workload.is_some(), "mu known via the phase estimate");
        assert!(r.owd.is_some(), "simulation provides echo stamps");
        assert!(r.route_changes.is_empty(), "stable route");
    }

    #[test]
    fn mu_hint_overrides_the_estimate() {
        let series = scenario_series(2);
        let r = full_report(&series, Some(128_000.0));
        let w = r.workload.expect("workload with hint");
        assert_eq!(w.mu_bps, 128_000.0);
    }

    #[test]
    fn report_renders_all_sections() {
        let series = scenario_series(3);
        let r = full_report(&series, Some(128_000.0));
        let text = render_report(&r);
        for needle in [
            "measurement:",
            "loss:",
            "gilbert model:",
            "delay:",
            "bottleneck:",
            "workload:",
            "one-way:",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let series = scenario_series(4);
        let r = full_report(&series, None);
        let json = serde_json::to_string(&r).expect("serializable");
        assert!(json.contains("\"ulp\""));
        assert!(json.contains("\"measurement\""));
    }
}
