//! # probenet-core
//!
//! The analysis pipeline of the probenet workspace — the primary
//! contribution of Bolot's SIGCOMM '93 paper *"End-to-End Packet Delay and
//! Loss Behavior in the Internet"*, as a library:
//!
//! * [`phase`] — phase plots `(rtt_n, rtt_{n+1})`, probe-compression-line
//!   detection, and bottleneck-bandwidth estimation from the line's
//!   intercept (§4, Figures 2, 4–6).
//! * [`workload`] — the equation-(6) workload estimator
//!   `b_n = μ(w_{n+1} − w_n + δ) − P` and the multimodal interarrival
//!   distribution with automatic peak labeling (§4, Figures 8–9).
//! * [`loss`] — `ulp`, `clp`, the packet loss gap, loss-run statistics and
//!   randomness tests (§5, Table 3).
//! * [`experiment`] — calibrated INRIA–UMd and UMd–Pitt scenarios and the
//!   parallel δ sweep behind Table 3.
//! * [`recovery`] — FEC and repetition recovery under measured loss
//!   processes (§5's audio/video implications).
//! * [`report`] — terminal renderings of every table and figure.
//!
//! ## End-to-end example
//!
//! ```
//! use probenet_core::{PaperScenario, PhasePlot};
//! use probenet_netdyn::ExperimentConfig;
//! use probenet_sim::SimDuration;
//!
//! // Probe the calibrated INRIA -> UMd path at δ = 50 ms for 30 s.
//! let scenario = PaperScenario::inria_umd(42);
//! let config = ExperimentConfig::paper(SimDuration::from_millis(50))
//!     .with_count(600);
//! let out = scenario.run(&config);
//!
//! // The phase plot exposes the fixed delay near (D, D).
//! let plot = PhasePlot::from_series(&out.series);
//! assert!(plot.min_rtt_ms().unwrap() > 100.0);
//! ```

pub mod campaign;
pub mod delay;
pub mod experiment;
pub mod impair;
pub mod loss;
pub mod owd;
pub mod phase;
pub mod recovery;
pub mod report;
pub mod routechange;
pub mod sched;
pub mod stream_report;
pub mod summary;
pub mod workload;

pub use campaign::{
    campaign_matrix, impaired_campaign, inria_umd_campaign, run_campaign, run_campaign_serial,
    CampaignResult, MetricSpread,
};
pub use delay::{
    analyze_delay_distribution, loss_delay_correlation, loss_given_delay, playback_buffer_ms,
    DelayAnalysis, DelayFit,
};
pub use experiment::{delta_sweep, delta_sweep_serial, ExperimentOutput, PaperScenario, SweepRow};
pub use impair::{impairment_scenario, impairment_scenarios, ImpairedScenario};
pub use loss::{
    analyze_loss_flags, analyze_losses, Chi2Summary, GilbertModel, LossAnalysis, RunsTestSummary,
};
pub use owd::{analyze_owd, DirectionSummary, OwdAnalysis};
pub use phase::{BottleneckEstimate, PhasePlot, PhasePoint};
pub use recovery::{fec_overhead, fec_recovery, repetition_recovery, RecoveryStats};
pub use report::{render_histogram, render_phase_plot, render_table3, render_time_series};
pub use routechange::{detect_route_changes, RouteChange};
pub use stream_report::{loss_analysis_from_stream, render_stream_snapshot};
pub use summary::{full_report, render_report, FullReport, MeasurementSummary};
pub use workload::{
    analyze_workload, interarrival_series, workload_estimates, LabeledPeak, PeakLabel,
    WorkloadAnalysis,
};
