//! Phase-plot analysis of RTT series (the paper's §4).
//!
//! A phase plot marks a point at `(rtt_n, rtt_{n+1})` for each consecutive
//! pair of delivered probes. Its structure encodes the path:
//!
//! * a cluster hugging the **diagonal** near `(D, D)` = probes that saw a
//!   roughly constant (often empty) queue — eq. (1);
//! * a line `rtt_{n+1} = rtt_n + P/μ − δ` = **probe compression**: probes
//!   queued back-to-back drain at the bottleneck rate, so their RTT
//!   difference is the constant `P/μ − δ` — eq. (3);
//! * the x-intercept of that line, `δ − P/μ`, yields the **bottleneck
//!   bandwidth** `μ = P / (δ − intercept)` — how the paper recovers the
//!   128 kb/s transatlantic link from Figure 2.

use probenet_netdyn::RttSeries;
use probenet_stats::{find_relative_peaks, Histogram};
use serde::{Deserialize, Serialize};

/// One phase-plane point, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhasePoint {
    /// `rtt_n`.
    pub x: f64,
    /// `rtt_{n+1}`.
    pub y: f64,
}

/// A phase plot plus the experiment parameters its analysis needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhasePlot {
    /// Points for consecutive delivered probe pairs, in ms.
    pub points: Vec<PhasePoint>,
    /// Probe interval δ in ms.
    pub delta_ms: f64,
    /// Probe wire size in bits (the `P` of the analysis).
    pub probe_bits: f64,
    /// Clock resolution of the measurements in ms (0 = perfect).
    pub clock_resolution_ms: f64,
}

/// A bottleneck-bandwidth estimate read off the compression line.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BottleneckEstimate {
    /// The compression-line RTT difference `P/μ − δ`, ms (negative).
    pub line_offset_ms: f64,
    /// The x-axis intercept `δ − P/μ`, ms (the paper reads ≈48 ms in Fig 2).
    pub intercept_ms: f64,
    /// Estimated bottleneck bandwidth in bits/s.
    pub mu_bps: f64,
    /// Lower bandwidth bound given the clock resolution (equals `mu_bps`
    /// for a perfect clock).
    pub mu_lo_bps: f64,
    /// Upper bandwidth bound given the clock resolution.
    pub mu_hi_bps: f64,
    /// Number of phase points within tolerance of the compression line.
    pub compression_points: usize,
}

impl PhasePlot {
    /// Build from an RTT series: one point per consecutive pair of
    /// **delivered** probes (pairs broken by a loss are skipped, losses
    /// being `rtt = 0` in the paper's convention would otherwise smear
    /// points onto the axes).
    pub fn from_series(series: &RttSeries) -> PhasePlot {
        let mut points = Vec::new();
        for w in series.records.windows(2) {
            if let (Some(a), Some(b)) = (w[0].rtt, w[1].rtt) {
                points.push(PhasePoint {
                    x: a as f64 / 1e6,
                    y: b as f64 / 1e6,
                });
            }
        }
        PhasePlot {
            points,
            delta_ms: series.interval().as_millis_f64(),
            probe_bits: series.wire_bytes as f64 * 8.0,
            clock_resolution_ms: series.clock_resolution_ns as f64 / 1e6,
        }
    }

    /// RTT differences `rtt_{n+1} − rtt_n` of all phase points, ms.
    pub fn diffs(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.y - p.x).collect()
    }

    /// Smallest RTT in the plot — the fixed-component estimate `D + P/μ`
    /// (the paper reads the `(D, D)` cluster, ≈140 ms in Figure 2).
    pub fn min_rtt_ms(&self) -> Option<f64> {
        self.points
            .iter()
            .flat_map(|p| [p.x, p.y])
            .min_by(|a, b| a.partial_cmp(b).expect("finite RTTs"))
    }

    /// Points within `tol_ms` of the diagonal `y = x` — eq. (1) behaviour.
    pub fn near_diagonal(&self, tol_ms: f64) -> usize {
        self.points
            .iter()
            .filter(|p| (p.y - p.x).abs() <= tol_ms)
            .count()
    }

    /// Points within `tol_ms` of the compression line `y = x + offset`.
    pub fn near_line(&self, offset_ms: f64, tol_ms: f64) -> usize {
        self.points
            .iter()
            .filter(|p| (p.y - p.x - offset_ms).abs() <= tol_ms)
            .count()
    }

    /// Detect the compression line and estimate the bottleneck bandwidth.
    ///
    /// The RTT differences of compressed probe pairs all equal `P/μ − δ`,
    /// so they form a mode well below zero. The detector histograms the
    /// differences below `−δ/2`, takes the strongest peak as the line
    /// offset, and inverts `μ = P / (δ − offset... )`; it needs at least
    /// `min_points` differences on the line to report anything (the paper's
    /// Figure 4, δ = 500 ms, has only two compression points — too few to
    /// call a line).
    pub fn bottleneck_estimate(&self, min_points: usize) -> Option<BottleneckEstimate> {
        if self.points.is_empty() {
            return None;
        }
        let delta = self.delta_ms;
        // Bin at the clock resolution (the data is quantized to it), at
        // least 0.25 ms.
        let bin = self.clock_resolution_ms.max(0.25);
        // Candidate diffs: distinctly below the diagonal scatter and
        // physically possible — a queue drains at most δ between probes, so
        // no true difference can fall below `P/μ − δ` (one extra bin of
        // slack absorbs clock quantization).
        let lo = -delta - bin;
        let hi = -(delta / 4.0).max(1.5 * bin);
        if hi <= lo {
            return None;
        }
        let cands: Vec<f64> = self
            .diffs()
            .into_iter()
            .filter(|d| (lo..hi).contains(d))
            .collect();
        if cands.len() < min_points {
            return None;
        }
        let res = self.clock_resolution_ms;
        let (line_offset_ms, on_line) = if res > 0.0 {
            // Quantized measurements: every difference is (nearly) a
            // multiple of the clock resolution, and the constant true
            // difference is dithered onto two adjacent ticks with weights
            // that keep the mean unbiased. Find the lowest well-populated
            // tick — true compression differences are the *minimum*
            // possible, partial-drain contamination sits strictly above —
            // and average that tick with its upper neighbour, mass-weighted.
            let mut ticks: std::collections::BTreeMap<i64, (usize, f64)> =
                std::collections::BTreeMap::new();
            for &d in &cands {
                let k = (d / res).round() as i64;
                let e = ticks.entry(k).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += d;
            }
            let max_mass = ticks.values().map(|&(n, _)| n).max().unwrap_or(0);
            let (&k0, &(n0, s0)) = ticks
                .iter()
                .find(|&(_, &(n, _))| n >= (max_mass / 3).max(min_points))?;
            let (n1, s1) = ticks.get(&(k0 + 1)).copied().unwrap_or((0, 0.0));
            ((s0 + s1) / (n0 + n1) as f64, n0 + n1)
        } else {
            // Fine-grained clock: histogram the candidates and refine the
            // leftmost strong peak by a local average.
            let bins = (((hi - lo) / bin).ceil() as usize).max(1);
            let hist = Histogram::from_data(&cands, lo, hi, bins);
            let peaks = find_relative_peaks(&hist.frequencies(), 0.5, 2, 0);
            let best = peaks.into_iter().min_by_key(|p| p.index)?;
            let center = hist.center(best.index);
            let near: Vec<f64> = cands
                .iter()
                .copied()
                .filter(|d| (d - center).abs() <= 1.5 * bin)
                .collect();
            if near.len() < min_points {
                return None;
            }
            (near.iter().sum::<f64>() / near.len() as f64, near.len())
        };
        // A real compression line carries non-trivial mass: isolated deep
        // drains (the paper's Figure 4 has two) must not read as a line.
        if on_line < min_points.max(self.points.len() / 200) {
            return None;
        }
        let service_ms = delta + line_offset_ms; // P/μ in ms
        if service_ms <= 0.0 {
            return None;
        }
        let mu_bps = self.probe_bits / (service_ms / 1e3);
        // The clock bounds the service-time reading by ± one tick.
        let mu_hi_bps = if service_ms - res > 0.0 {
            self.probe_bits / ((service_ms - res) / 1e3)
        } else {
            f64::INFINITY
        };
        let mu_lo_bps = self.probe_bits / ((service_ms + res) / 1e3);
        Some(BottleneckEstimate {
            line_offset_ms,
            intercept_ms: -line_offset_ms,
            mu_bps,
            mu_lo_bps,
            mu_hi_bps,
            compression_points: self.near_line(line_offset_ms, bin).max(on_line),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probenet_netdyn::{RttRecord, RttSeries};
    use probenet_sim::SimDuration;

    fn series_from_ms(delta_ms: u64, rtts: &[Option<f64>]) -> RttSeries {
        let records = rtts
            .iter()
            .enumerate()
            .map(|(n, r)| RttRecord {
                seq: n as u64,
                sent_at: n as u64 * delta_ms * 1_000_000,
                echoed_at: None,
                rtt: r.map(|ms| (ms * 1e6) as u64),
            })
            .collect();
        RttSeries::new(
            SimDuration::from_millis(delta_ms),
            72,
            SimDuration::ZERO,
            records,
        )
    }

    #[test]
    fn points_skip_lost_probes() {
        let s = series_from_ms(
            50,
            &[Some(140.0), Some(141.0), None, Some(150.0), Some(149.0)],
        );
        let p = PhasePlot::from_series(&s);
        // Pairs: (0,1) and (3,4) only.
        assert_eq!(p.points.len(), 2);
        assert_eq!(p.points[0], PhasePoint { x: 140.0, y: 141.0 });
        assert_eq!(p.points[1], PhasePoint { x: 150.0, y: 149.0 });
    }

    #[test]
    fn min_rtt_reads_fixed_component() {
        let s = series_from_ms(50, &[Some(162.0), Some(140.5), Some(188.0)]);
        let p = PhasePlot::from_series(&s);
        assert_eq!(p.min_rtt_ms(), Some(140.5));
        assert_eq!(p.near_diagonal(1.0), 0);
        assert_eq!(p.near_diagonal(50.0), 2);
    }

    #[test]
    fn synthetic_compression_line_recovers_mu() {
        // Build a synthetic experiment: μ = 128 kb/s, P = 72 B = 576 bits,
        // δ = 50 ms. P/μ = 4.5 ms, so compressed pairs differ by −45.5 ms.
        let delta = 50.0;
        let service = 4.5;
        let mut rtts: Vec<Option<f64>> = Vec::new();
        let mut current: f64 = 140.0;
        // 40 compression episodes: a jump up then a drain of 4 probes.
        for _ in 0..40 {
            rtts.push(Some(current));
            let mut r = current + 120.0; // behind a large workload
            for _ in 0..4 {
                rtts.push(Some(r));
                r += service - delta;
            }
            current = 140.0 + (rtts.len() % 7) as f64 * 0.3;
        }
        let s = series_from_ms(delta as u64, &rtts);
        let p = PhasePlot::from_series(&s);
        let est = p.bottleneck_estimate(10).expect("line detected");
        assert!(
            (est.line_offset_ms + 45.5).abs() < 0.3,
            "offset {}",
            est.line_offset_ms
        );
        assert!((est.intercept_ms - 45.5).abs() < 0.3);
        let err = (est.mu_bps - 128_000.0).abs() / 128_000.0;
        assert!(err < 0.05, "mu {} off by {err}", est.mu_bps);
        assert!(est.compression_points >= 100);
    }

    #[test]
    fn no_compression_returns_none() {
        // Diagonal scatter only (the paper's Figure 4 situation).
        let rtts: Vec<Option<f64>> = (0..200)
            .map(|i| Some(140.0 + (i % 13) as f64 * 2.0))
            .collect();
        let s = series_from_ms(500, &rtts);
        let p = PhasePlot::from_series(&s);
        assert!(p.bottleneck_estimate(5).is_none());
    }

    #[test]
    fn a_few_stray_points_do_not_fake_a_line() {
        let mut rtts: Vec<Option<f64>> = (0..100).map(|_| Some(141.0)).collect();
        // Two isolated compression-like drops (as in Figure 4).
        rtts[10] = Some(141.0 + 400.0);
        rtts[50] = Some(141.0 + 420.0);
        let s = series_from_ms(500, &rtts);
        let p = PhasePlot::from_series(&s);
        assert!(p.bottleneck_estimate(5).is_none());
    }

    #[test]
    fn empty_series_is_safe() {
        let s = series_from_ms(50, &[]);
        let p = PhasePlot::from_series(&s);
        assert!(p.points.is_empty());
        assert_eq!(p.min_rtt_ms(), None);
        assert!(p.bottleneck_estimate(1).is_none());
    }
}
