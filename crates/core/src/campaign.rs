//! Multi-seed measurement campaigns.
//!
//! The paper reports single 10-minute runs per δ; a simulator can rerun the
//! same experiment under many independent seeds and report the sampling
//! variability of every metric — the error bars the original measurements
//! could not have. Campaigns run on the bounded work-stealing pool in
//! [`crate::sched`] (previously one unbounded OS thread per seed), and
//! [`campaign_matrix`] schedules an entire δ × seed matrix as one flat task
//! list so a big sweep saturates every core instead of parallelizing only
//! within one interval at a time.
//!
//! Results are deterministic by construction: per-seed metrics are computed
//! independently and aggregated in seed order, so any thread count —
//! including the forced-serial [`run_campaign_serial`] — produces an
//! identical [`CampaignResult`].

use probenet_netdyn::ExperimentConfig;
use probenet_sim::SimDuration;
use probenet_stats::Moments;
use serde::{Deserialize, Serialize};

use crate::experiment::PaperScenario;
use crate::loss::analyze_losses;
use crate::phase::PhasePlot;
use crate::sched;

/// Mean ± std of one metric across seeds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MetricSpread {
    /// Across-seed mean.
    pub mean: f64,
    /// Across-seed standard deviation.
    pub std: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Number of seeds contributing.
    pub n: usize,
}

impl MetricSpread {
    fn from_values(values: &[f64]) -> MetricSpread {
        let m = Moments::from_slice(values);
        MetricSpread {
            mean: m.mean(),
            std: m.std_dev(),
            min: m.min(),
            max: m.max(),
            n: values.len(),
        }
    }
}

/// Aggregated results of one experiment configuration across seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Probe interval δ in ms.
    pub delta_ms: f64,
    /// Unconditional loss probability across seeds.
    pub ulp: MetricSpread,
    /// Conditional loss probability across seeds (seeds without losses are
    /// skipped).
    pub clp: Option<MetricSpread>,
    /// Mean delivered RTT (ms) across seeds.
    pub mean_rtt_ms: MetricSpread,
    /// Minimum RTT (ms) across seeds — the D + P/μ estimate's stability.
    pub min_rtt_ms: MetricSpread,
    /// Bottleneck estimate (kb/s) across seeds that detected a compression
    /// line.
    pub mu_kbps: Option<MetricSpread>,
}

/// Headline metrics of a single seeded run.
struct RunMetrics {
    ulp: f64,
    clp: Option<f64>,
    mean_rtt: f64,
    min_rtt: f64,
    mu_kbps: Option<f64>,
}

fn seed_metrics(scenario: &PaperScenario, config: &ExperimentConfig) -> RunMetrics {
    let out = scenario.run(config);
    let loss = analyze_losses(&out.series);
    let rtts = out.series.delivered_rtts_ms();
    let mean_rtt = if rtts.is_empty() {
        f64::NAN
    } else {
        rtts.iter().sum::<f64>() / rtts.len() as f64
    };
    let plot = PhasePlot::from_series(&out.series);
    RunMetrics {
        ulp: loss.ulp,
        clp: loss.clp,
        mean_rtt,
        min_rtt: out.series.min_rtt_ms().unwrap_or(f64::NAN),
        mu_kbps: plot.bottleneck_estimate(10).map(|e| e.mu_bps / 1e3),
    }
}

fn aggregate(delta_ms: f64, runs: &[RunMetrics]) -> CampaignResult {
    let collect = |f: &dyn Fn(&RunMetrics) -> Option<f64>| -> Vec<f64> {
        runs.iter()
            .filter_map(f)
            .filter(|x| x.is_finite())
            .collect()
    };
    let ulp = MetricSpread::from_values(&collect(&|r| Some(r.ulp)));
    let clp_vals = collect(&|r| r.clp);
    let mu_vals = collect(&|r| r.mu_kbps);
    CampaignResult {
        delta_ms,
        ulp,
        clp: if clp_vals.is_empty() {
            None
        } else {
            Some(MetricSpread::from_values(&clp_vals))
        },
        mean_rtt_ms: MetricSpread::from_values(&collect(&|r| Some(r.mean_rtt))),
        min_rtt_ms: MetricSpread::from_values(&collect(&|r| Some(r.min_rtt))),
        mu_kbps: if mu_vals.is_empty() {
            None
        } else {
            Some(MetricSpread::from_values(&mu_vals))
        },
    }
}

fn run_campaign_threads<F>(
    threads: usize,
    scenario_for: F,
    config: &ExperimentConfig,
    seeds: &[u64],
) -> CampaignResult
where
    F: Fn(u64) -> PaperScenario + Sync,
{
    assert!(!seeds.is_empty(), "a campaign needs at least one seed");
    let runs = sched::par_map_threads(threads, seeds.to_vec(), |seed| {
        seed_metrics(&scenario_for(seed), config)
    });
    aggregate(config.interval.as_millis_f64(), &runs)
}

/// Run `scenario_for(seed)` under `config` for each seed on the bounded
/// pool and aggregate the headline metrics.
///
/// # Panics
/// Panics if `seeds` is empty.
pub fn run_campaign<F>(scenario_for: F, config: &ExperimentConfig, seeds: &[u64]) -> CampaignResult
where
    F: Fn(u64) -> PaperScenario + Sync,
{
    run_campaign_threads(sched::max_threads(), scenario_for, config, seeds)
}

/// [`run_campaign`] forced onto the calling thread, seed by seed, in order.
/// Exists so tests can pin that pool scheduling never changes results.
///
/// # Panics
/// Panics if `seeds` is empty.
pub fn run_campaign_serial<F>(
    scenario_for: F,
    config: &ExperimentConfig,
    seeds: &[u64],
) -> CampaignResult
where
    F: Fn(u64) -> PaperScenario + Sync,
{
    run_campaign_threads(1, scenario_for, config, seeds)
}

/// Run the full δ × seed matrix as one flat task list on the pool and
/// aggregate per interval, in interval order.
///
/// Each task is a single seeded run, so the pool balances across the whole
/// matrix: short-δ runs (many probes) and long-δ runs (few) interleave
/// instead of the sweep waiting on the slowest interval's seed batch.
///
/// # Panics
/// Panics if `deltas` or `seeds` is empty.
pub fn campaign_matrix<F>(
    scenario_for: F,
    deltas: &[SimDuration],
    span: SimDuration,
    seeds: &[u64],
) -> Vec<CampaignResult>
where
    F: Fn(u64) -> PaperScenario + Sync,
{
    assert!(
        !deltas.is_empty(),
        "a campaign matrix needs at least one interval"
    );
    assert!(!seeds.is_empty(), "a campaign needs at least one seed");
    let configs: Vec<ExperimentConfig> = deltas
        .iter()
        .map(|&d| ExperimentConfig::paper(d).with_count((span.as_nanos() / d.as_nanos()) as usize))
        .collect();
    let cells: Vec<(usize, u64)> = (0..deltas.len())
        .flat_map(|di| seeds.iter().map(move |&s| (di, s)))
        .collect();
    let runs = sched::par_map(cells, |(di, seed)| {
        seed_metrics(&scenario_for(seed), &configs[di])
    });
    // `runs` is in cell order (delta-major), so aggregate by fixed-size
    // chunks per interval.
    runs.chunks(seeds.len())
        .zip(&configs)
        .map(|(chunk, config)| aggregate(config.interval.as_millis_f64(), chunk))
        .collect()
}

/// Convenience: the calibrated INRIA–UMd campaign at interval δ.
pub fn inria_umd_campaign(delta: SimDuration, span: SimDuration, seeds: &[u64]) -> CampaignResult {
    let config =
        ExperimentConfig::paper(delta).with_count((span.as_nanos() / delta.as_nanos()) as usize);
    run_campaign(PaperScenario::inria_umd, &config, seeds)
}

/// A seed campaign over a named impairment scenario: the scenario's
/// impairment pipeline and clock configuration are threaded into every
/// seeded run (see [`crate::impair`]).
pub fn impaired_campaign(
    scenario: &crate::impair::ImpairedScenario,
    delta: SimDuration,
    span: SimDuration,
    seeds: &[u64],
) -> CampaignResult {
    let config = scenario.config(delta, span);
    run_campaign(|seed| scenario.with_seed(seed), &config, seeds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_aggregates_across_seeds() {
        let r = inria_umd_campaign(
            SimDuration::from_millis(50),
            SimDuration::from_secs(40),
            &[1, 2, 3, 4],
        );
        assert_eq!(r.ulp.n, 4);
        assert!(r.ulp.mean > 0.02 && r.ulp.mean < 0.3, "ulp {}", r.ulp.mean);
        assert!(r.ulp.min <= r.ulp.mean && r.ulp.mean <= r.ulp.max);
        // The fixed component is stable across seeds.
        assert!(r.min_rtt_ms.std < 1.0, "min rtt std {}", r.min_rtt_ms.std);
        assert!((r.min_rtt_ms.mean - 140.6).abs() < 2.0);
        // Queueing means vary with the seed but stay in a sane band.
        assert!(r.mean_rtt_ms.mean > r.min_rtt_ms.mean + 10.0);
    }

    #[test]
    fn different_seeds_actually_vary() {
        let r = inria_umd_campaign(
            SimDuration::from_millis(20),
            SimDuration::from_secs(30),
            &[10, 20, 30, 40, 50],
        );
        assert!(r.ulp.std > 0.0, "seeds produced identical loss rates");
        assert!(r.ulp.max > r.ulp.min);
    }

    #[test]
    fn single_seed_campaign_is_degenerate_but_valid() {
        let r = inria_umd_campaign(
            SimDuration::from_millis(100),
            SimDuration::from_secs(30),
            &[7],
        );
        assert_eq!(r.ulp.n, 1);
        assert_eq!(r.ulp.std, 0.0);
        assert_eq!(r.ulp.min, r.ulp.max);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_list_panics() {
        inria_umd_campaign(
            SimDuration::from_millis(100),
            SimDuration::from_secs(10),
            &[],
        );
    }

    #[test]
    fn matrix_matches_per_interval_campaigns() {
        let deltas = [SimDuration::from_millis(50), SimDuration::from_millis(100)];
        let span = SimDuration::from_secs(20);
        let seeds = [3, 4];
        let matrix = campaign_matrix(PaperScenario::inria_umd, &deltas, span, &seeds);
        assert_eq!(matrix.len(), 2);
        for (result, &delta) in matrix.iter().zip(&deltas) {
            let single = inria_umd_campaign(delta, span, &seeds);
            assert_eq!(
                serde_json::to_string(result).unwrap(),
                serde_json::to_string(&single).unwrap(),
                "matrix cell diverged from standalone campaign at δ = {delta:?}"
            );
        }
    }
}
