//! Multi-seed measurement campaigns.
//!
//! The paper reports single 10-minute runs per δ; a simulator can rerun the
//! same experiment under many independent seeds and report the sampling
//! variability of every metric — the error bars the original measurements
//! could not have. Campaigns run seeds in parallel (crossbeam scoped
//! threads).

use probenet_netdyn::ExperimentConfig;
use probenet_sim::SimDuration;
use probenet_stats::Moments;
use serde::{Deserialize, Serialize};

use crate::experiment::PaperScenario;
use crate::loss::analyze_losses;
use crate::phase::PhasePlot;

/// Mean ± std of one metric across seeds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MetricSpread {
    /// Across-seed mean.
    pub mean: f64,
    /// Across-seed standard deviation.
    pub std: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Number of seeds contributing.
    pub n: usize,
}

impl MetricSpread {
    fn from_values(values: &[f64]) -> MetricSpread {
        let m = Moments::from_slice(values);
        MetricSpread {
            mean: m.mean(),
            std: m.std_dev(),
            min: m.min(),
            max: m.max(),
            n: values.len(),
        }
    }
}

/// Aggregated results of one experiment configuration across seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Probe interval δ in ms.
    pub delta_ms: f64,
    /// Unconditional loss probability across seeds.
    pub ulp: MetricSpread,
    /// Conditional loss probability across seeds (seeds without losses are
    /// skipped).
    pub clp: Option<MetricSpread>,
    /// Mean delivered RTT (ms) across seeds.
    pub mean_rtt_ms: MetricSpread,
    /// Minimum RTT (ms) across seeds — the D + P/μ estimate's stability.
    pub min_rtt_ms: MetricSpread,
    /// Bottleneck estimate (kb/s) across seeds that detected a compression
    /// line.
    pub mu_kbps: Option<MetricSpread>,
}

/// Run `scenario_for(seed)` under `config` for each seed (in parallel) and
/// aggregate the headline metrics.
///
/// # Panics
/// Panics if `seeds` is empty.
pub fn run_campaign<F>(scenario_for: F, config: &ExperimentConfig, seeds: &[u64]) -> CampaignResult
where
    F: Fn(u64) -> PaperScenario + Sync,
{
    assert!(!seeds.is_empty(), "a campaign needs at least one seed");
    struct RunMetrics {
        ulp: f64,
        clp: Option<f64>,
        mean_rtt: f64,
        min_rtt: f64,
        mu_kbps: Option<f64>,
    }
    let runs: Vec<RunMetrics> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let config = config.clone();
                let scenario_for = &scenario_for;
                s.spawn(move |_| {
                    let out = scenario_for(seed).run(&config);
                    let loss = analyze_losses(&out.series);
                    let rtts = out.series.delivered_rtts_ms();
                    let mean_rtt = if rtts.is_empty() {
                        f64::NAN
                    } else {
                        rtts.iter().sum::<f64>() / rtts.len() as f64
                    };
                    let plot = PhasePlot::from_series(&out.series);
                    RunMetrics {
                        ulp: loss.ulp,
                        clp: loss.clp,
                        mean_rtt,
                        min_rtt: out.series.min_rtt_ms().unwrap_or(f64::NAN),
                        mu_kbps: plot.bottleneck_estimate(10).map(|e| e.mu_bps / 1e3),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    })
    .expect("campaign scope");

    let collect = |f: &dyn Fn(&RunMetrics) -> Option<f64>| -> Vec<f64> {
        runs.iter()
            .filter_map(f)
            .filter(|x| x.is_finite())
            .collect()
    };
    let ulp = MetricSpread::from_values(&collect(&|r| Some(r.ulp)));
    let clp_vals = collect(&|r| r.clp);
    let mu_vals = collect(&|r| r.mu_kbps);
    CampaignResult {
        delta_ms: config.interval.as_millis_f64(),
        ulp,
        clp: if clp_vals.is_empty() {
            None
        } else {
            Some(MetricSpread::from_values(&clp_vals))
        },
        mean_rtt_ms: MetricSpread::from_values(&collect(&|r| Some(r.mean_rtt))),
        min_rtt_ms: MetricSpread::from_values(&collect(&|r| Some(r.min_rtt))),
        mu_kbps: if mu_vals.is_empty() {
            None
        } else {
            Some(MetricSpread::from_values(&mu_vals))
        },
    }
}

/// Convenience: the calibrated INRIA–UMd campaign at interval δ.
pub fn inria_umd_campaign(delta: SimDuration, span: SimDuration, seeds: &[u64]) -> CampaignResult {
    let config =
        ExperimentConfig::paper(delta).with_count((span.as_nanos() / delta.as_nanos()) as usize);
    run_campaign(PaperScenario::inria_umd, &config, seeds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_aggregates_across_seeds() {
        let r = inria_umd_campaign(
            SimDuration::from_millis(50),
            SimDuration::from_secs(40),
            &[1, 2, 3, 4],
        );
        assert_eq!(r.ulp.n, 4);
        assert!(r.ulp.mean > 0.02 && r.ulp.mean < 0.3, "ulp {}", r.ulp.mean);
        assert!(r.ulp.min <= r.ulp.mean && r.ulp.mean <= r.ulp.max);
        // The fixed component is stable across seeds.
        assert!(r.min_rtt_ms.std < 1.0, "min rtt std {}", r.min_rtt_ms.std);
        assert!((r.min_rtt_ms.mean - 140.6).abs() < 2.0);
        // Queueing means vary with the seed but stay in a sane band.
        assert!(r.mean_rtt_ms.mean > r.min_rtt_ms.mean + 10.0);
    }

    #[test]
    fn different_seeds_actually_vary() {
        let r = inria_umd_campaign(
            SimDuration::from_millis(20),
            SimDuration::from_secs(30),
            &[10, 20, 30, 40, 50],
        );
        assert!(r.ulp.std > 0.0, "seeds produced identical loss rates");
        assert!(r.ulp.max > r.ulp.min);
    }

    #[test]
    fn single_seed_campaign_is_degenerate_but_valid() {
        let r = inria_umd_campaign(
            SimDuration::from_millis(100),
            SimDuration::from_secs(30),
            &[7],
        );
        assert_eq!(r.ulp.n, 1);
        assert_eq!(r.ulp.std, 0.0);
        assert_eq!(r.ulp.min, r.ulp.max);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seed_list_panics() {
        inria_umd_campaign(
            SimDuration::from_millis(100),
            SimDuration::from_secs(10),
            &[],
        );
    }
}
