//! Named impairment scenarios: calibrated fault-injection configurations
//! layered on top of the paper's measurement scenarios.
//!
//! Each scenario wraps a [`PaperScenario`] with an impairment pipeline
//! ([`probenet_sim::impair`]) plus the measurement-side impairments (clock
//! drift and resolution), so the whole stack — path, cross traffic, fault
//! injectors, clock — is reproducible from one name and one seed. The
//! `repro --impair <scenario>` CLI and the golden-trace suite both resolve
//! scenarios through [`impairment_scenario`].
//!
//! The flagship scenario, `bursty-transatlantic`, is calibrated so the
//! simulator reproduces the paper's §4 loss findings end to end: at
//! δ = 8 ms the conditional loss probability far exceeds the unconditional
//! one (probes fall into the same Bad period), while at δ = 500 ms
//! successive probes almost never share a Bad period and
//! [`LossAnalysis::losses_look_random`](crate::loss::LossAnalysis) holds.

use probenet_netdyn::{ExperimentConfig, DECSTATION_CLOCK};
use probenet_sim::{GilbertElliott, ImpairmentSpec, SimDuration, SimTime};

use crate::experiment::{ExperimentOutput, PaperScenario};

/// A named, fully calibrated impairment scenario.
#[derive(Debug, Clone)]
pub struct ImpairedScenario {
    /// Stable scenario name, as accepted by `repro --impair`.
    pub name: &'static str,
    /// One-line description for listings.
    pub summary: &'static str,
    /// The underlying measurement scenario with impairments attached to
    /// its path (the stored seed is a placeholder; use
    /// [`ImpairedScenario::with_seed`]).
    pub scenario: PaperScenario,
    /// Frequency error of the measuring host's clock (parts per billion).
    pub clock_drift_ppb: i64,
    /// Clock resolution of the measuring host.
    pub clock_resolution: SimDuration,
}

impl ImpairedScenario {
    /// The underlying scenario re-keyed to `seed`.
    pub fn with_seed(&self, seed: u64) -> PaperScenario {
        let mut sc = self.scenario.clone();
        sc.seed = seed;
        sc
    }

    /// The experiment configuration for probing interval `delta` over
    /// `span`, carrying this scenario's clock impairments.
    pub fn config(&self, delta: SimDuration, span: SimDuration) -> ExperimentConfig {
        let count = (span.as_nanos() / delta.as_nanos()) as usize;
        ExperimentConfig::paper(delta)
            .with_count(count)
            .with_clock(self.clock_resolution)
            .with_drift(self.clock_drift_ppb)
    }

    /// Run the scenario under `seed` at interval `delta` for `span`.
    pub fn run(&self, seed: u64, delta: SimDuration, span: SimDuration) -> ExperimentOutput {
        self.with_seed(seed).run(&self.config(delta, span))
    }
}

/// The INRIA → UMd path with a Gilbert–Elliott burst channel on its
/// transatlantic bottleneck: Bad periods of ~60 ms mean arrive every ~4 s
/// and destroy (almost) everything crossing the link while they last.
///
/// Calibration against the paper's §4 numbers: at δ = 8 ms a Bad period
/// spans ~7 consecutive probes, so the conditional loss probability is an
/// order of magnitude above the unconditional one; at δ = 500 ms a Bad
/// period almost never catches two successive probes, so losses pass the
/// lag-1 independence test.
fn bursty_transatlantic() -> ImpairedScenario {
    let mut scenario = PaperScenario::inria_umd(0);
    let ge = GilbertElliott::bursty(
        SimDuration::from_secs(4),
        SimDuration::from_millis(60),
        0.95,
    );
    let (bidx, _) = scenario.path.bottleneck();
    let link = scenario.path.links[bidx].clone();
    scenario.path.links[bidx] = link.with_impairments(ImpairmentSpec::none().with_burst_loss(ge));
    ImpairedScenario {
        name: "bursty-transatlantic",
        summary: "Gilbert-Elliott burst loss on the 128 kb/s transatlantic bottleneck",
        scenario,
        clock_drift_ppb: 0,
        clock_resolution: DECSTATION_CLOCK,
    }
}

/// A mid-run route change: at t = 40 s the hop after the bottleneck
/// re-homes from its 2 ms satellite-free route onto a 30 ms detour, with a
/// half-second blackout while routing reconverges; at t = 80 s the
/// original route comes back. The RTT baseline shifts by ~56 ms (both
/// directions) and then returns — the signature
/// [`crate::routechange::detect_route_changes`] looks for.
fn route_flap() -> ImpairedScenario {
    let mut scenario = PaperScenario::inria_umd(0);
    let (bidx, _) = scenario.path.bottleneck();
    let hop = bidx + 1;
    let old_prop = scenario.path.links[hop].propagation;
    let link = scenario.path.links[hop].clone();
    scenario.path.links[hop] = link.with_impairments(
        ImpairmentSpec::none()
            .with_flap(SimTime::from_millis(39_500), SimTime::from_millis(40_000))
            .with_route_shift(SimTime::from_secs(40), SimDuration::from_millis(30))
            .with_route_shift(SimTime::from_secs(80), old_prop),
    );
    ImpairedScenario {
        name: "route-flap",
        summary: "route change at t=40s (+28 ms one-way) with a 0.5 s blackout, back at t=80s",
        scenario,
        clock_drift_ppb: 0,
        clock_resolution: DECSTATION_CLOCK,
    }
}

/// The unimpaired INRIA → UMd network measured through a bad clock: a
/// coarse 10 ms tick drifting 200 ppm fast. Purely a measurement-side
/// impairment — the network behaves exactly as in the base scenario.
fn noisy_clock() -> ImpairedScenario {
    ImpairedScenario {
        name: "noisy-clock",
        summary: "unimpaired network measured by a 10 ms clock drifting +200 ppm",
        scenario: PaperScenario::inria_umd(0),
        clock_drift_ppb: 200_000,
        clock_resolution: SimDuration::from_millis(10),
    }
}

/// A misbehaving mid-path hop: the SURAnet ethernet segment corrupts 1% of
/// payloads (caught end-to-end by the wire checksum), duplicates 0.5% of
/// packets, and holds 2% back for 25 ms — enough for later probes to
/// overtake them.
fn dirty_fiber() -> ImpairedScenario {
    let mut scenario = PaperScenario::inria_umd(0);
    // Link 6 is the first of the two lossy SURAnet ethernet hops.
    let link = scenario.path.links[6].clone();
    scenario.path.links[6] = link.with_impairments(
        ImpairmentSpec::none()
            .with_corruption(0.01)
            .with_duplicate(0.005, SimDuration::from_millis(1))
            .with_reorder(0.02, SimDuration::from_millis(25)),
    );
    ImpairedScenario {
        name: "dirty-fiber",
        summary: "mid-path hop corrupting 1%, duplicating 0.5% and reordering 2% of packets",
        scenario,
        clock_drift_ppb: 0,
        clock_resolution: DECSTATION_CLOCK,
    }
}

/// All named impairment scenarios, in listing order.
pub fn impairment_scenarios() -> Vec<ImpairedScenario> {
    vec![
        bursty_transatlantic(),
        route_flap(),
        noisy_clock(),
        dirty_fiber(),
    ]
}

/// Look a scenario up by name.
pub fn impairment_scenario(name: &str) -> Option<ImpairedScenario> {
    impairment_scenarios().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_lookup_by_name() {
        for sc in impairment_scenarios() {
            let found = impairment_scenario(sc.name).expect("lookup");
            assert_eq!(found.name, sc.name);
        }
        assert!(impairment_scenario("no-such-scenario").is_none());
    }

    #[test]
    fn bursty_scenario_expected_loss_is_moderate() {
        let sc = impairment_scenario("bursty-transatlantic").unwrap();
        let (bidx, _) = sc.scenario.path.bottleneck();
        let ge = sc.scenario.path.links[bidx]
            .impair
            .burst_loss
            .as_ref()
            .expect("burst channel on the bottleneck");
        // Stationary loss from the burst channel alone stays small: the
        // bursts move losses together in time, not up in rate.
        let p = ge.expected_loss();
        assert!((0.005..0.05).contains(&p), "stationary burst loss {p}");
    }

    #[test]
    fn scenarios_are_reproducible_per_seed() {
        let sc = impairment_scenario("dirty-fiber").unwrap();
        let delta = SimDuration::from_millis(20);
        let span = SimDuration::from_secs(10);
        let a = sc.run(11, delta, span);
        let b = sc.run(11, delta, span);
        assert_eq!(a.series.records, b.series.records);
        let c = sc.run(12, delta, span);
        assert_ne!(a.series.records, c.series.records);
    }

    #[test]
    fn noisy_clock_bands_and_stretches_rtts() {
        let sc = impairment_scenario("noisy-clock").unwrap();
        let out = sc.run(3, SimDuration::from_millis(50), SimDuration::from_secs(30));
        for r in out.series.delivered_rtts_ms() {
            let ns = (r * 1e6).round() as u64;
            assert_eq!(ns % 10_000_000, 0, "rtt {r} not on the 10 ms grid");
        }
    }

    #[test]
    fn route_flap_shifts_the_rtt_baseline() {
        let sc = impairment_scenario("route-flap").unwrap();
        let out = sc.run(
            5,
            SimDuration::from_millis(100),
            SimDuration::from_secs(120),
        );
        let records = &out.series.records;
        let min_in = |lo_s: u64, hi_s: u64| {
            records
                .iter()
                .filter(|r| r.sent_at >= lo_s * 1_000_000_000 && r.sent_at < hi_s * 1_000_000_000)
                .filter_map(|r| r.rtt)
                .min()
                .map(|ns| ns as f64 / 1e6)
                .expect("deliveries in window")
        };
        let before = min_in(0, 38);
        let during = min_in(45, 75);
        let after = min_in(85, 120);
        // 28 ms extra one-way propagation in both directions ≈ +56 ms RTT.
        assert!(
            during - before > 40.0,
            "baseline shift too small: before {before}, during {during}"
        );
        assert!(
            (after - before).abs() < 10.0,
            "baseline did not return: before {before}, after {after}"
        );
    }
}
