//! Calibrated experiment scenarios and the δ sweep.
//!
//! [`PaperScenario`] packages everything the paper's measurement campaign
//! needs: a path (its Table 1 or Table 2 route), cross traffic calibrated
//! to a bottleneck utilization, and a seed. [`delta_sweep`] reruns it for
//! every probe interval of §2 — the sweep behind Table 3 — in parallel.

use probenet_netdyn::{paper_intervals, ExperimentConfig, RttSeries, SimExperiment};
use probenet_sim::{Direction, DropReason, FlowClass, Path, SimDuration};
use probenet_traffic::InternetMix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A fully calibrated measurement scenario.
#[derive(Debug, Clone)]
pub struct PaperScenario {
    /// The probed path.
    pub path: Path,
    /// Cross-traffic utilization of the bottleneck in the probe direction.
    pub outbound_utilization: f64,
    /// Cross-traffic utilization of the bottleneck on the return direction.
    pub inbound_utilization: f64,
    /// Share of cross traffic that is interactive (Telnet-like).
    pub telnet_share: f64,
    /// Mean bulk batch size (packets per FTP burst).
    pub mean_batch: f64,
    /// Master seed: cross-traffic generation and link randomness derive
    /// from it.
    pub seed: u64,
}

impl PaperScenario {
    /// The INRIA → UMd scenario of July 1992: the Table-1 path with its
    /// 128 kb/s transatlantic bottleneck, moderately loaded with the
    /// Telnet + FTP mix the paper's workload analysis infers.
    pub fn inria_umd(seed: u64) -> Self {
        PaperScenario {
            path: Path::inria_umd_1992(),
            outbound_utilization: 0.62,
            inbound_utilization: 0.20,
            telnet_share: 0.10,
            mean_batch: 3.0,
            seed,
        }
    }

    /// The UMd → Pittsburgh scenario of May 1993 (Table-2 path): a T3
    /// backbone whose 10 Mb/s campus bottleneck is lightly loaded relative
    /// to its speed.
    pub fn umd_pitt(seed: u64) -> Self {
        PaperScenario {
            path: Path::umd_pitt_1993(),
            outbound_utilization: 0.45,
            inbound_utilization: 0.30,
            telnet_share: 0.15,
            mean_batch: 4.0,
            seed,
        }
    }

    /// Bottleneck link index and rate.
    pub fn bottleneck(&self) -> (usize, u64) {
        let (i, spec) = self.path.bottleneck();
        (i, spec.bandwidth_bps)
    }

    /// Run the scenario under `config`, returning the measured series and
    /// summary statistics of what happened inside the network.
    pub fn run(&self, config: &ExperimentConfig) -> ExperimentOutput {
        let (bidx, mu) = self.bottleneck();
        // Cross traffic must outlive the probe schedule a little.
        let horizon = config.span() + SimDuration::from_secs(5);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let outbound = InternetMix::calibrated(
            mu,
            self.outbound_utilization,
            self.telnet_share,
            self.mean_batch,
        )
        .generate(&mut rng, horizon);
        let inbound = InternetMix::calibrated(
            mu,
            self.inbound_utilization,
            self.telnet_share,
            self.mean_batch,
        )
        .generate(&mut rng, horizon);

        let (series, run) = SimExperiment::new(
            config.clone(),
            self.path.clone(),
            self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        )
        .with_cross_traffic(bidx, Direction::Outbound, outbound)
        .with_cross_traffic(bidx, Direction::Inbound, inbound)
        .run();

        let now = run.now;
        let bottleneck_utilization = run.port(bidx, Direction::Outbound).utilization(now);
        let mut probe_overflow = 0u64;
        let mut probe_random = 0u64;
        let mut probe_impair = 0u64;
        for d in &run.drops {
            if d.class == FlowClass::Probe {
                match d.reason {
                    DropReason::BufferOverflow | DropReason::EarlyDrop => probe_overflow += 1,
                    DropReason::RandomLoss => probe_random += 1,
                    DropReason::BurstLoss | DropReason::LinkDown | DropReason::Corrupted => {
                        probe_impair += 1
                    }
                    DropReason::TtlExpired => {}
                }
            }
        }
        let engine_stats = run.stats;
        // Hand the run back so a serial engine's allocations can be reused
        // by the next run on this worker thread.
        probenet_netdyn::recycle_run(run);
        ExperimentOutput {
            series,
            mu_bps: mu,
            bottleneck_utilization,
            probe_overflow_drops: probe_overflow,
            probe_random_drops: probe_random,
            probe_impair_drops: probe_impair,
            engine_stats,
        }
    }
}

/// Output of one scenario run.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// The measured RTT series.
    pub series: RttSeries,
    /// The configured bottleneck rate.
    pub mu_bps: u64,
    /// Measured utilization of the outbound bottleneck queue (cross
    /// traffic + probes).
    pub bottleneck_utilization: f64,
    /// Probe losses from buffer overflow.
    pub probe_overflow_drops: u64,
    /// Probe losses from random link loss (faulty interfaces).
    pub probe_random_drops: u64,
    /// Probe losses from the fault injectors: burst loss, outage windows,
    /// and corrupted payloads discarded at an endpoint.
    pub probe_impair_drops: u64,
    /// Work counters of the simulation engine behind this run.
    pub engine_stats: probenet_sim::EngineStats,
}

/// One row of the paper's Table 3 plus context.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRow {
    /// Probe interval δ in ms.
    pub delta_ms: f64,
    /// Unconditional loss probability.
    pub ulp: f64,
    /// Conditional loss probability (0 when undefined).
    pub clp: f64,
    /// Packet loss gap `1/(1 − clp)` (1 when undefined).
    pub plg: f64,
    /// Fraction of the bottleneck consumed by the probe stream alone.
    pub probe_utilization: f64,
}

/// Run the scenario for every paper interval (`span` of probing per
/// experiment; the paper used 10 minutes) on the bounded work-stealing
/// pool ([`crate::sched`]) and derive the Table-3 rows, in interval order.
pub fn delta_sweep(
    scenario: &PaperScenario,
    span: SimDuration,
) -> Vec<(SweepRow, ExperimentOutput)> {
    delta_sweep_threads(crate::sched::max_threads(), scenario, span)
}

/// [`delta_sweep`] forced onto the calling thread, interval by interval.
/// Exists so tests can pin that pool scheduling never changes results.
pub fn delta_sweep_serial(
    scenario: &PaperScenario,
    span: SimDuration,
) -> Vec<(SweepRow, ExperimentOutput)> {
    delta_sweep_threads(1, scenario, span)
}

fn delta_sweep_threads(
    threads: usize,
    scenario: &PaperScenario,
    span: SimDuration,
) -> Vec<(SweepRow, ExperimentOutput)> {
    let intervals = paper_intervals();
    let outputs: Vec<ExperimentOutput> = crate::sched::par_map_threads(threads, intervals, |d| {
        let count = (span.as_nanos() / d.as_nanos()) as usize;
        scenario.run(&ExperimentConfig::paper(d).with_count(count))
    });

    let (_, mu) = scenario.bottleneck();
    outputs
        .into_iter()
        .map(|out| {
            let loss = crate::loss::analyze_losses(&out.series);
            let clp = loss.clp.unwrap_or(0.0);
            let row = SweepRow {
                delta_ms: out.series.interval().as_millis_f64(),
                ulp: loss.ulp,
                clp,
                plg: loss.plg_palm.unwrap_or(1.0),
                probe_utilization: (out.series.wire_bytes as f64 * 8.0)
                    / (out.series.interval().as_secs_f64() * mu as f64),
            };
            (row, out)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_config(delta_ms: u64, seconds: u64) -> ExperimentConfig {
        let d = SimDuration::from_millis(delta_ms);
        ExperimentConfig::paper(d).with_count((seconds * 1000 / delta_ms) as usize)
    }

    #[test]
    fn inria_umd_rtt_floor_is_near_140ms() {
        let sc = PaperScenario::inria_umd(1);
        let out = sc.run(&short_config(50, 60));
        let min = out.series.min_rtt_ms().expect("some deliveries");
        assert!(
            (138.0..150.0).contains(&min),
            "min RTT {min} not near the 140 ms fixed component"
        );
    }

    #[test]
    fn inria_umd_shows_queueing_and_loss() {
        let sc = PaperScenario::inria_umd(2);
        let out = sc.run(&short_config(50, 120));
        let rtts = out.series.delivered_rtts_ms();
        let max = rtts.iter().copied().fold(0.0f64, f64::max);
        let min = rtts.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            max - min > 30.0,
            "no queueing dynamics: spread {}",
            max - min
        );
        // The calibrated path loses probes (random + overflow).
        assert!(out.series.loss_probability() > 0.02);
        assert!(out.probe_random_drops > 0);
        // Bottleneck is busy but not saturated at δ = 50 ms.
        assert!((0.3..0.999).contains(&out.bottleneck_utilization));
    }

    #[test]
    fn small_delta_loses_more_than_large_delta() {
        let sc = PaperScenario::inria_umd(3);
        let fast = sc.run(&short_config(8, 60));
        let slow = sc.run(&short_config(500, 240));
        assert!(
            fast.series.loss_probability() > slow.series.loss_probability(),
            "fast {} slow {}",
            fast.series.loss_probability(),
            slow.series.loss_probability()
        );
    }

    #[test]
    fn umd_pitt_is_fast_and_mostly_lossless() {
        let sc = PaperScenario::umd_pitt(4);
        let out = sc.run(&short_config(50, 60));
        let min = out.series.min_rtt_ms().expect("deliveries");
        assert!(min < 40.0, "min RTT {min} too slow for a T3 path");
        assert!(out.series.loss_probability() < 0.05);
    }

    #[test]
    fn scenario_runs_are_reproducible() {
        let sc = PaperScenario::inria_umd(7);
        let a = sc.run(&short_config(20, 30));
        let b = sc.run(&short_config(20, 30));
        assert_eq!(a.series.records, b.series.records);
        assert_eq!(a.probe_overflow_drops, b.probe_overflow_drops);
    }

    #[test]
    fn sweep_produces_one_row_per_interval() {
        let sc = PaperScenario::inria_umd(5);
        let rows = delta_sweep(&sc, SimDuration::from_secs(20));
        assert_eq!(rows.len(), 6);
        let deltas: Vec<f64> = rows.iter().map(|(r, _)| r.delta_ms).collect();
        assert_eq!(deltas, vec![8.0, 20.0, 50.0, 100.0, 200.0, 500.0]);
        for (row, _) in &rows {
            assert!((0.0..=1.0).contains(&row.ulp));
            assert!(row.plg >= 1.0);
        }
    }
}
