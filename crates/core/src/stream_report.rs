//! Adapters between the streaming layer (`probenet-stream`) and the batch
//! analysis types of this crate.
//!
//! The streaming loss estimator retains sufficient statistics for every
//! quantity `analyze_loss_flags` derives, so its snapshot converts to a
//! [`LossAnalysis`] without loss: the differential suite serializes both
//! sides to JSON and compares the bytes.

use crate::loss::{Chi2Summary, LossAnalysis, RunsTestSummary};
use probenet_stream::{BankSnapshot, LossSnapshot, SessionKey};

/// Rehydrate a batch [`LossAnalysis`] from a streaming snapshot. Field for
/// field — the snapshot carries the same values with the same `None`
/// conventions, so serializing the result matches the batch analyzer's
/// output byte-for-byte.
pub fn loss_analysis_from_stream(snap: &LossSnapshot) -> LossAnalysis {
    LossAnalysis {
        sent: snap.sent,
        lost: snap.lost,
        ulp: snap.ulp,
        clp: snap.clp,
        plg_measured: snap.plg_measured,
        plg_palm: snap.plg_palm,
        run_lengths: snap.run_lengths.clone(),
        runs_test: snap.runs_test.map(|r| RunsTestSummary {
            runs: r.runs,
            expected: r.expected,
            z: r.z,
            p_value: r.p_value,
        }),
        lag1_test: snap.lag1_test.map(|t| Chi2Summary {
            statistic: t.statistic,
            p_value: t.p_value,
        }),
    }
}

/// A compact terminal rendering of one session's streaming snapshot —
/// the collector-side counterpart of this crate's batch report lines.
pub fn render_stream_snapshot(key: &SessionKey, snap: &BankSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{key}: sent {} received {} lost {} (ulp {:.4})\n",
        snap.sent, snap.received, snap.lost, snap.loss.ulp
    ));
    match (snap.loss.clp, snap.loss.plg_measured) {
        (Some(clp), Some(plg)) => {
            out.push_str(&format!("  loss: clp {clp:.4} plg {plg:.2}"));
            if let Some(palm) = snap.loss.plg_palm {
                out.push_str(&format!(" (palm {palm:.2})"));
            }
            out.push('\n');
        }
        _ => out.push_str("  loss: too few losses to condition\n"),
    }
    if let Some(rtt) = &snap.rtt {
        out.push_str(&format!(
            "  rtt: mean {:.2} ms sd {:.2} min {:.2} max {:.2} p50 {:.2} p90 {:.2} p99 {:.2}\n",
            rtt.mean_ms, rtt.std_dev_ms, rtt.min_ms, rtt.max_ms, rtt.p50_ms, rtt.p90_ms, rtt.p99_ms
        ));
    } else {
        out.push_str("  rtt: no probes delivered\n");
    }
    out.push_str(&format!(
        "  workload: mean {:.1} B over {} pairs; phase: {} cells ({} pairs)\n",
        snap.workload.mean_workload_bytes,
        snap.workload.pairs,
        snap.phase.nonzero_cells,
        snap.phase.pairs
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::analyze_loss_flags;
    use probenet_stream::{BankConfig, EstimatorBank, StreamRecord, StreamingLoss};

    #[test]
    fn stream_loss_round_trips_to_batch_bytes() {
        let mut state = 123u64;
        let flags: Vec<bool> = (0..2000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) < 0.2
            })
            .collect();
        let mut s = StreamingLoss::new();
        for &f in &flags {
            s.push(f);
        }
        let from_stream = loss_analysis_from_stream(&s.snapshot());
        let batch = analyze_loss_flags(&flags);
        assert_eq!(
            serde_json::to_string(&from_stream).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
    }

    #[test]
    fn render_is_total_for_empty_and_lossless_sessions() {
        let key = SessionKey::new("render", 20, 7);
        let empty = EstimatorBank::new(BankConfig::bolot(20.0, 72, 0));
        let text = render_stream_snapshot(&key, &empty.snapshot());
        assert!(text.contains("no probes delivered"));

        let mut ok = EstimatorBank::new(BankConfig::bolot(20.0, 72, 0));
        for i in 0..10 {
            ok.push(&StreamRecord {
                seq: i,
                sent_at_ns: i * 20_000_000,
                rtt_ns: Some(140_000_000),
            });
        }
        let text = render_stream_snapshot(&key, &ok.snapshot());
        assert!(text.contains("too few losses"));
        assert!(text.contains("mean 140.00"));
    }
}
