//! Bounded work-stealing scheduler for independent simulation tasks.
//!
//! The campaign and sweep drivers used to spawn one OS thread per seed or
//! per probe interval, which oversubscribes the machine as soon as the task
//! matrix outgrows the core count. This module replaces that pattern with a
//! fixed pool of `min(available_parallelism, tasks)` workers (overridable
//! via the `PROBENET_THREADS` environment variable) fed from per-worker
//! queues with work stealing: each worker drains its own queue from the
//! back and steals from the front of a sibling's queue when it runs dry, so
//! a skewed matrix (long runs clustered on one worker) still keeps every
//! core busy.
//!
//! Determinism: results are returned **in task order**, never in completion
//! order, and tasks carry no shared mutable state, so the output of
//! [`par_map`] is byte-for-byte identical whatever the thread count —
//! including `PROBENET_THREADS=1`, which runs inline with no pool at all.
//! `tests/determinism.rs` pins this property against serial execution.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Worker-thread cap: the `PROBENET_THREADS` environment variable when set
/// to a positive integer, otherwise [`std::thread::available_parallelism`].
/// Shared with the partitioned simulation engine so one knob governs both
/// layers of parallelism.
pub fn max_threads() -> usize {
    probenet_sim::effective_threads()
}

/// Apply `f` to every item on the bounded pool and return the results in
/// item order (see module docs for the determinism contract).
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_threads(max_threads(), items, f)
}

/// [`par_map`] with an explicit worker cap; `threads == 1` runs inline on
/// the calling thread. The forced-serial path exists so tests can compare
/// parallel output against a pool-free run.
pub fn par_map_threads<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Task state lives in index-addressed slots so any worker can run any
    // task while results keep a stable order.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Contiguous blocks per worker: neighbors in the task list often have
    // similar cost (same δ, adjacent seeds), and block owners drain from
    // the back while thieves take from the front, minimizing contention.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| {
            let lo = n * w / threads;
            let hi = n * (w + 1) / threads;
            Mutex::new((lo..hi).collect())
        })
        .collect();

    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let slots = &slots;
            let results = &results;
            let f = &f;
            scope.spawn(move || loop {
                let next = queues[w]
                    .lock()
                    .expect("lock poisoned")
                    .pop_back()
                    .or_else(|| {
                        (0..threads)
                            .filter(|&o| o != w)
                            .find_map(|o| queues[o].lock().expect("lock poisoned").pop_front())
                    });
                let Some(i) = next else { break };
                let item = slots[i]
                    .lock()
                    .expect("lock poisoned")
                    .take()
                    .expect("task slot taken twice");
                let out = f(item);
                *results[i].lock().expect("lock poisoned") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker panicked mid-task")
                .expect("task never ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_keep_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map_threads(4, items.clone(), |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_map_threads(1, items.clone(), |x| x.wrapping_mul(0x9e37).rotate_left(7));
        let parallel = par_map_threads(8, items, |x| x.wrapping_mul(0x9e37).rotate_left(7));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = par_map_threads(3, (0..50).collect::<Vec<usize>>(), |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(out.len(), 50);
        assert_eq!(count.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn empty_and_single_item_edges() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(empty, |x: u32| x).is_empty());
        assert_eq!(par_map(vec![9u32], |x| x + 1), vec![10]);
    }

    #[test]
    fn skewed_costs_still_complete() {
        // One huge task first: the owner chews on it while others steal
        // the rest of its block.
        let out = par_map_threads(4, (0..20u64).collect::<Vec<_>>(), |i| {
            let spins = if i == 0 { 200_000 } else { 10 };
            let mut acc = i;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 20);
        for (k, (i, _)) in out.iter().enumerate() {
            assert_eq!(*i, k as u64);
        }
    }

    #[test]
    fn max_threads_is_positive() {
        assert!(max_threads() >= 1);
    }
}
