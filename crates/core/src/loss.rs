//! Loss-process characterization (the paper's §5).
//!
//! Three quantities summarize the loss process of a probe series:
//!
//! * `ulp = P(rtt_n = 0)` — the unconditional loss probability;
//! * `clp = P(rtt_{n+1} = 0 | rtt_n = 0)` — the conditional loss
//!   probability, measuring burstiness;
//! * `plg = 1 / (1 − clp)` — the packet loss gap, the expected run of
//!   consecutive losses under stationarity and ergodicity (a Palm-calculus
//!   identity, the paper's footnote 2), which can also be measured
//!   directly as the mean loss-run length.
//!
//! The paper's finding: `clp ≥ ulp` always, the two converge as δ grows,
//! and losses are **essentially random** (gap ≈ 1) once the probes use a
//! small fraction of the bottleneck.

use probenet_netdyn::RttSeries;
use probenet_stats::{lag1_independence, runs_test, Chi2Test, RunsTest};
use serde::{Deserialize, Serialize};

/// Loss metrics of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LossAnalysis {
    /// Probes sent.
    pub sent: usize,
    /// Probes lost.
    pub lost: usize,
    /// Unconditional loss probability.
    pub ulp: f64,
    /// Conditional loss probability `P(loss_{n+1} | loss_n)`; `None` when
    /// no probe except possibly the last was lost (undefined conditioning).
    pub clp: Option<f64>,
    /// Mean observed run of consecutive losses (`None` without losses).
    pub plg_measured: Option<f64>,
    /// The Palm identity prediction `1 / (1 − clp)`.
    pub plg_palm: Option<f64>,
    /// Distribution of loss-run lengths (`runs[k]` = number of maximal runs
    /// of exactly `k + 1` consecutive losses).
    pub run_lengths: Vec<usize>,
    /// Wald–Wolfowitz runs test on the loss indicator sequence (`None` for
    /// degenerate sequences).
    pub runs_test: Option<RunsTestSummary>,
    /// χ² lag-1 independence test (`None` for degenerate sequences).
    pub lag1_test: Option<Chi2Summary>,
}

/// Serializable summary of a runs test.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunsTestSummary {
    /// Observed runs.
    pub runs: usize,
    /// Expected runs under independence.
    pub expected: f64,
    /// z-score.
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl From<RunsTest> for RunsTestSummary {
    fn from(r: RunsTest) -> Self {
        RunsTestSummary {
            runs: r.runs,
            expected: r.expected,
            z: r.z,
            p_value: r.p_value,
        }
    }
}

/// Serializable summary of a χ² test.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Chi2Summary {
    /// χ²(1) statistic.
    pub statistic: f64,
    /// p-value.
    pub p_value: f64,
}

impl From<Chi2Test> for Chi2Summary {
    fn from(t: Chi2Test) -> Self {
        Chi2Summary {
            statistic: t.statistic,
            p_value: t.p_value,
        }
    }
}

/// Analyze a loss indicator sequence (`true` = lost).
///
/// ```
/// use probenet_core::analyze_loss_flags;
/// // Two isolated losses in ten probes.
/// let a = analyze_loss_flags(&[false, true, false, false, false,
///                              false, true, false, false, false]);
/// assert_eq!(a.lost, 2);
/// assert_eq!(a.ulp, 0.2);
/// assert_eq!(a.clp, Some(0.0));          // never two in a row
/// assert_eq!(a.plg_measured, Some(1.0)); // loss gap of 1: "random" losses
/// ```
pub fn analyze_loss_flags(flags: &[bool]) -> LossAnalysis {
    let sent = flags.len();
    let lost = flags.iter().filter(|&&b| b).count();
    let ulp = if sent == 0 {
        0.0
    } else {
        lost as f64 / sent as f64
    };

    // clp: over positions n with flags[n] lost and n+1 existing.
    let mut cond_base = 0usize;
    let mut cond_loss = 0usize;
    for w in flags.windows(2) {
        if w[0] {
            cond_base += 1;
            if w[1] {
                cond_loss += 1;
            }
        }
    }
    let clp = if cond_base == 0 {
        None
    } else {
        Some(cond_loss as f64 / cond_base as f64)
    };

    // Maximal runs of consecutive losses.
    let mut run_lengths_raw: Vec<usize> = Vec::new();
    let mut current = 0usize;
    for &f in flags {
        if f {
            current += 1;
        } else if current > 0 {
            run_lengths_raw.push(current);
            current = 0;
        }
    }
    if current > 0 {
        run_lengths_raw.push(current);
    }
    let plg_measured = if run_lengths_raw.is_empty() {
        None
    } else {
        Some(run_lengths_raw.iter().sum::<usize>() as f64 / run_lengths_raw.len() as f64)
    };
    let max_run = run_lengths_raw.iter().copied().max().unwrap_or(0);
    let mut run_lengths = vec![0usize; max_run];
    for r in run_lengths_raw {
        run_lengths[r - 1] += 1;
    }

    let plg_palm = clp.and_then(|c| if c < 1.0 { Some(1.0 / (1.0 - c)) } else { None });

    LossAnalysis {
        sent,
        lost,
        ulp,
        clp,
        plg_measured,
        plg_palm,
        run_lengths,
        runs_test: runs_test(flags).map(Into::into),
        lag1_test: lag1_independence(flags).map(Into::into),
    }
}

/// Analyze the loss process of an RTT series.
pub fn analyze_losses(series: &RttSeries) -> LossAnalysis {
    analyze_loss_flags(&series.loss_flags())
}

impl LossAnalysis {
    /// The paper's random-loss verdict: losses look independent when the
    /// lag-1 χ² test does not reject at the given significance level
    /// (and trivially when there are too few losses to test).
    pub fn losses_look_random(&self, alpha: f64) -> bool {
        match &self.lag1_test {
            Some(t) => t.p_value > alpha,
            None => true,
        }
    }
}

/// The Gilbert two-state loss model: a Markov chain on {Good, Bad} where
/// packets are lost in the Bad state. It is the canonical generative model
/// behind the paper's `ulp`/`clp`/`plg` triple:
///
/// * `p = P(Bad | Good)` — probability a loss burst starts;
/// * `r = P(Good | Bad)` — probability a burst ends, so the mean burst
///   length (the paper's loss gap) is `1/r`;
/// * the stationary loss rate is `p / (p + r)` and `clp = 1 − r`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertModel {
    /// P(loss | previous delivered).
    pub p: f64,
    /// P(delivered | previous lost).
    pub r: f64,
}

impl GilbertModel {
    /// Maximum-likelihood fit from a loss indicator sequence: transition
    /// frequencies of the 2-state chain. Returns `None` when either state
    /// was never left *and* never entered (degenerate conditioning).
    pub fn fit(flags: &[bool]) -> Option<GilbertModel> {
        let mut from_good = (0u64, 0u64); // (to bad, total)
        let mut from_bad = (0u64, 0u64); // (to good, total)
        for w in flags.windows(2) {
            if w[0] {
                from_bad.1 += 1;
                if !w[1] {
                    from_bad.0 += 1;
                }
            } else {
                from_good.1 += 1;
                if w[1] {
                    from_good.0 += 1;
                }
            }
        }
        if from_good.1 == 0 || from_bad.1 == 0 {
            return None;
        }
        Some(GilbertModel {
            p: from_good.0 as f64 / from_good.1 as f64,
            r: from_bad.0 as f64 / from_bad.1 as f64,
        })
    }

    /// Stationary loss probability `p / (p + r)` — the model's `ulp`.
    pub fn loss_rate(&self) -> f64 {
        if self.p + self.r == 0.0 {
            return 0.0;
        }
        self.p / (self.p + self.r)
    }

    /// Conditional loss probability `1 − r` — the model's `clp`.
    pub fn clp(&self) -> f64 {
        1.0 - self.r
    }

    /// Mean loss-burst length `1/r` — the model's packet loss gap.
    ///
    /// # Panics
    /// Panics if `r == 0` (bursts never end).
    pub fn loss_gap(&self) -> f64 {
        assert!(self.r > 0.0, "loss bursts never end when r = 0");
        1.0 / self.r
    }

    /// Generate a synthetic loss sequence from the model — e.g. to stress
    /// recovery schemes with the measured burstiness at arbitrary length.
    pub fn simulate<R: rand::Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<bool> {
        let mut out = Vec::with_capacity(n);
        let mut bad = rng.gen::<f64>() < self.loss_rate();
        for _ in 0..n {
            out.push(bad);
            let u = rng.gen::<f64>();
            bad = if bad { u >= self.r } else { u < self.p };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_ulp() {
        let flags = [false, true, true, false, true, false];
        let a = analyze_loss_flags(&flags);
        assert_eq!(a.sent, 6);
        assert_eq!(a.lost, 3);
        assert!((a.ulp - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clp_conditioning() {
        // Losses at 1,2 and 4: conditioning positions are 1 (next lost)
        // and 2 (next ok) and 4 (next ok): clp = 1/3.
        let flags = [false, true, true, false, true, false];
        let a = analyze_loss_flags(&flags);
        assert!((a.clp.unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn run_length_bookkeeping() {
        let flags = [true, true, false, true, false, true, true, true];
        let a = analyze_loss_flags(&flags);
        // Runs: 2, 1, 3.
        assert_eq!(a.run_lengths, vec![1, 1, 1]);
        assert!((a.plg_measured.unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn palm_identity_on_iid_losses() {
        // IID Bernoulli(p) losses: clp ≈ p and plg ≈ 1/(1-p); measured mean
        // run length must agree with the Palm prediction.
        let mut state = 5u64;
        let p = 0.1;
        let flags: Vec<bool> = (0..200_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) < p
            })
            .collect();
        let a = analyze_loss_flags(&flags);
        let clp = a.clp.unwrap();
        assert!((clp - p).abs() < 0.01, "clp {clp}");
        let palm = a.plg_palm.unwrap();
        let measured = a.plg_measured.unwrap();
        assert!(
            (palm - measured).abs() / measured < 0.02,
            "palm {palm} measured {measured}"
        );
        assert!(a.losses_look_random(0.01));
    }

    #[test]
    fn bursty_losses_have_clp_above_ulp_and_fail_randomness() {
        // Sticky Markov losses.
        let mut state = 9u64;
        let mut cur = false;
        let flags: Vec<bool> = (0..100_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                cur = if cur { u < 0.6 } else { u < 0.05 };
                cur
            })
            .collect();
        let a = analyze_loss_flags(&flags);
        let clp = a.clp.unwrap();
        assert!(clp > a.ulp + 0.2, "clp {clp} ulp {}", a.ulp);
        assert!((clp - 0.6).abs() < 0.03);
        assert!((a.plg_palm.unwrap() - 2.5).abs() < 0.2);
        assert!(!a.losses_look_random(0.01));
    }

    #[test]
    fn gilbert_fit_recovers_markov_parameters() {
        // Generate from known (p, r) with an LCG and fit back.
        let (p, r) = (0.04, 0.4);
        let mut state = 3u64;
        let mut bad = false;
        let flags: Vec<bool> = (0..300_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                bad = if bad { u >= r } else { u < p };
                bad
            })
            .collect();
        let m = GilbertModel::fit(&flags).expect("both states visited");
        assert!((m.p - p).abs() < 0.005, "p {}", m.p);
        assert!((m.r - r).abs() < 0.02, "r {}", m.r);
        // Model identities line up with the empirical loss analysis.
        let a = analyze_loss_flags(&flags);
        assert!((m.loss_rate() - a.ulp).abs() < 0.01);
        assert!((m.clp() - a.clp.unwrap()).abs() < 0.01);
        assert!((m.loss_gap() - a.plg_measured.unwrap()).abs() < 0.1);
    }

    #[test]
    fn gilbert_simulation_matches_its_own_parameters() {
        use rand::SeedableRng;
        let model = GilbertModel { p: 0.05, r: 0.5 };
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let flags = model.simulate(&mut rng, 200_000);
        let refit = GilbertModel::fit(&flags).expect("both states");
        assert!((refit.p - 0.05).abs() < 0.01);
        assert!((refit.r - 0.5).abs() < 0.03);
    }

    #[test]
    fn gilbert_degenerate_fits() {
        assert!(GilbertModel::fit(&[false; 100]).is_none());
        assert!(GilbertModel::fit(&[true; 100]).is_none());
        assert!(GilbertModel::fit(&[]).is_none());
        // iid losses: p ≈ loss rate, r ≈ 1 - loss rate.
        let flags: Vec<bool> = (0..10_000).map(|i| i % 10 == 0).collect();
        let m = GilbertModel::fit(&flags).expect("both states");
        assert!(m.r > 0.99, "periodic singleton losses: r {}", m.r);
    }

    #[test]
    fn degenerate_sequences() {
        let a = analyze_loss_flags(&[]);
        assert_eq!(a.ulp, 0.0);
        assert!(a.clp.is_none());
        assert!(a.plg_measured.is_none());
        assert!(a.losses_look_random(0.05));

        let all_ok = analyze_loss_flags(&[false; 10]);
        assert_eq!(all_ok.lost, 0);
        assert!(all_ok.clp.is_none());

        let all_lost = analyze_loss_flags(&[true; 10]);
        assert_eq!(all_lost.ulp, 1.0);
        assert_eq!(all_lost.clp, Some(1.0));
        assert!(all_lost.plg_palm.is_none()); // 1/(1-1) undefined
        assert_eq!(all_lost.plg_measured, Some(10.0));
    }

    #[test]
    fn trailing_loss_counts_in_runs_but_not_conditioning() {
        let flags = [false, false, true];
        let a = analyze_loss_flags(&flags);
        // The final loss has no successor: clp base is empty.
        assert!(a.clp.is_none());
        assert_eq!(a.run_lengths, vec![1]);
    }
}
