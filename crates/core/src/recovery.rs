//! Loss-recovery analysis for audio/video streams (the paper's §5
//! implications).
//!
//! The paper argues that because the probe loss gap stays close to 1,
//! **open-loop** recovery works for real-time audio over the Internet:
//! either forward error correction (its ref \[23\]) or simply repeating the
//! previous packet. This module quantifies both mechanisms against a
//! measured loss sequence, so the claim can be tested on any experiment.

use serde::{Deserialize, Serialize};

/// Outcome of applying a recovery scheme to a loss sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Packets in the stream.
    pub total: usize,
    /// Packets lost by the network.
    pub lost: usize,
    /// Lost packets the scheme reconstructed.
    pub recovered: usize,
    /// Loss rate after recovery: `(lost − recovered) / total`.
    pub residual_loss_rate: f64,
}

fn stats(total: usize, lost: usize, recovered: usize) -> RecoveryStats {
    RecoveryStats {
        total,
        lost,
        recovered,
        residual_loss_rate: if total == 0 {
            0.0
        } else {
            (lost - recovered) as f64 / total as f64
        },
    }
}

/// Repetition recovery: a lost packet is replaced by replaying the previous
/// packet, so it is "recovered" (acceptably concealed) exactly when the
/// previous packet arrived. The first packet can never be concealed.
pub fn repetition_recovery(loss: &[bool]) -> RecoveryStats {
    let total = loss.len();
    let lost = loss.iter().filter(|&&b| b).count();
    let mut recovered = 0usize;
    for (i, &l) in loss.iter().enumerate() {
        if l && i > 0 && !loss[i - 1] {
            recovered += 1;
        }
    }
    stats(total, lost, recovered)
}

/// FEC block recovery: packets are grouped into blocks of `data + parity`
/// consecutive packets carrying `data` media packets plus `parity`
/// redundancy packets (ref \[23\] style). A block reconstructs everything
/// if it loses at most `parity` packets; otherwise its lost packets stay
/// lost. The trailing partial block is protected pro rata (it still
/// tolerates up to `parity` losses).
///
/// # Panics
/// Panics if `data == 0`.
pub fn fec_recovery(loss: &[bool], data: usize, parity: usize) -> RecoveryStats {
    assert!(data > 0, "FEC needs at least one data packet per block");
    let block = data + parity;
    let total = loss.len();
    let lost = loss.iter().filter(|&&b| b).count();
    let mut recovered = 0usize;
    for chunk in loss.chunks(block) {
        let block_losses = chunk.iter().filter(|&&b| b).count();
        if block_losses > 0 && block_losses <= parity {
            recovered += block_losses;
        }
    }
    stats(total, lost, recovered)
}

/// The redundancy overhead of an FEC(data, parity) scheme: extra bandwidth
/// as a fraction of the media rate.
pub fn fec_overhead(data: usize, parity: usize) -> f64 {
    parity as f64 / data as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iid_losses(n: usize, p: f64, seed: u64) -> Vec<bool> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) < p
            })
            .collect()
    }

    fn bursty_losses(n: usize, p_enter: f64, p_stay: f64, seed: u64) -> Vec<bool> {
        let mut state = seed;
        let mut cur = false;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                cur = if cur { u < p_stay } else { u < p_enter };
                cur
            })
            .collect()
    }

    #[test]
    fn repetition_conceals_isolated_losses() {
        let loss = [false, true, false, false, true, false];
        let r = repetition_recovery(&loss);
        assert_eq!(r.lost, 2);
        assert_eq!(r.recovered, 2);
        assert_eq!(r.residual_loss_rate, 0.0);
    }

    #[test]
    fn repetition_fails_on_back_to_back_losses() {
        let loss = [false, true, true, true, false];
        let r = repetition_recovery(&loss);
        assert_eq!(r.lost, 3);
        assert_eq!(r.recovered, 1); // only the first of the run
        assert!((r.residual_loss_rate - 2.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn repetition_cannot_conceal_first_packet() {
        let loss = [true, false];
        let r = repetition_recovery(&loss);
        assert_eq!(r.recovered, 0);
    }

    #[test]
    fn fec_recovers_up_to_parity_per_block() {
        // Blocks of 4+1: one loss per block recovered, two not.
        let loss = [
            true, false, false, false, false, // 1 loss -> recovered
            true, true, false, false, false, // 2 losses -> kept
        ];
        let r = fec_recovery(&loss, 4, 1);
        assert_eq!(r.lost, 3);
        assert_eq!(r.recovered, 1);
    }

    #[test]
    fn fec_with_zero_parity_recovers_nothing() {
        let loss = iid_losses(1000, 0.1, 3);
        let r = fec_recovery(&loss, 5, 0);
        assert_eq!(r.recovered, 0);
        assert_eq!(r.residual_loss_rate, r.lost as f64 / 1000.0);
    }

    #[test]
    fn random_losses_favor_fec() {
        // The paper's point: with loss gap ≈ 1, open-loop FEC is adequate.
        let loss = iid_losses(100_000, 0.10, 7);
        let r = fec_recovery(&loss, 4, 1);
        let before = r.lost as f64 / r.total as f64;
        assert!((before - 0.10).abs() < 0.01);
        // Residual: a block of 5 fails only with ≥2 losses; residual rate
        // is far below the raw rate.
        assert!(
            r.residual_loss_rate < 0.35 * before,
            "residual {} raw {before}",
            r.residual_loss_rate
        );
    }

    #[test]
    fn bursty_losses_blunt_fec() {
        // Same raw loss rate, bursty arrangement: FEC recovers a much
        // smaller share (the paper's "correlated losses decrease the
        // effectiveness of open-loop error control").
        let iid = iid_losses(200_000, 0.10, 11);
        let bursty = bursty_losses(200_000, 0.0385, 0.65, 11);
        let r_iid = fec_recovery(&iid, 4, 1);
        let r_bursty = fec_recovery(&bursty, 4, 1);
        let raw_iid = r_iid.lost as f64 / r_iid.total as f64;
        let raw_bursty = r_bursty.lost as f64 / r_bursty.total as f64;
        assert!(
            (raw_iid - raw_bursty).abs() < 0.02,
            "loss rates must be comparable: {raw_iid} vs {raw_bursty}"
        );
        let frac_iid = r_iid.recovered as f64 / r_iid.lost as f64;
        let frac_bursty = r_bursty.recovered as f64 / r_bursty.lost as f64;
        assert!(
            frac_iid > frac_bursty + 0.15,
            "iid recovery {frac_iid} bursty {frac_bursty}"
        );
    }

    #[test]
    fn overhead_math() {
        assert!((fec_overhead(4, 1) - 0.25).abs() < 1e-12);
        assert!((fec_overhead(10, 2) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_is_safe() {
        assert_eq!(repetition_recovery(&[]).residual_loss_rate, 0.0);
        assert_eq!(fec_recovery(&[], 4, 1).total, 0);
    }
}
