//! Text rendering of the paper's artifacts: Table 3, ASCII phase plots
//! (Figures 2, 4–6), time-series strips (Figure 1) and interarrival
//! histograms (Figures 8–9).
//!
//! These renderers are what the `repro` harness prints, so every figure of
//! the paper has a directly inspectable, terminal-friendly counterpart.

use crate::experiment::SweepRow;
use crate::phase::PhasePlot;
use probenet_stats::Histogram;

/// Render the paper's Table 3 (`ulp`, `clp`, `plg` per δ).
pub fn render_table3(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    out.push_str("| delta(ms) |");
    for r in rows {
        out.push_str(&format!(" {:>6.0} |", r.delta_ms));
    }
    out.push('\n');
    out.push_str("| ulp       |");
    for r in rows {
        out.push_str(&format!(" {:>6.2} |", r.ulp));
    }
    out.push('\n');
    out.push_str("| clp       |");
    for r in rows {
        out.push_str(&format!(" {:>6.2} |", r.clp));
    }
    out.push('\n');
    out.push_str("| plg       |");
    for r in rows {
        out.push_str(&format!(" {:>6.1} |", r.plg));
    }
    out.push('\n');
    out
}

/// An ASCII scatter plot of a phase plane: `x = rtt_n`, `y = rtt_{n+1}`.
/// The diagonal is drawn with `.` where no data lands.
pub fn render_phase_plot(plot: &PhasePlot, width: usize, height: usize) -> String {
    let mut out = String::new();
    if plot.points.is_empty() {
        out.push_str("(no phase points)\n");
        return out;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in &plot.points {
        lo = lo.min(p.x).min(p.y);
        hi = hi.max(p.x).max(p.y);
    }
    if hi <= lo {
        hi = lo + 1.0;
    }
    let pad = (hi - lo) * 0.05;
    let (lo, hi) = (lo - pad, hi + pad);
    let span = hi - lo;
    let mut grid = vec![vec![b' '; width]; height];
    // Diagonal guide: one dot per column, at a row computed from the
    // column — inherently index-driven.
    #[allow(clippy::needless_range_loop)]
    for gx in 0..width {
        let v = lo + span * (gx as f64 + 0.5) / width as f64;
        let gy = ((v - lo) / span * height as f64) as usize;
        if gy < height {
            grid[height - 1 - gy][gx] = b'.';
        }
    }
    // Density buckets -> glyphs.
    let mut counts = vec![vec![0u32; width]; height];
    for p in &plot.points {
        let gx = (((p.x - lo) / span) * width as f64) as usize;
        let gy = (((p.y - lo) / span) * height as f64) as usize;
        if gx < width && gy < height {
            counts[height - 1 - gy][gx] += 1;
        }
    }
    for (r, row) in counts.iter().enumerate() {
        for (c, &n) in row.iter().enumerate() {
            grid[r][c] = match n {
                0 => grid[r][c],
                1..=2 => b'o',
                3..=9 => b'*',
                _ => b'#',
            };
        }
    }
    out.push_str(&format!(
        "rtt_(n+1) vs rtt_n [{lo:.0}..{hi:.0} ms], {} points\n",
        plot.points.len()
    ));
    for row in grid {
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out
}

/// An ASCII strip chart of a time series (`rtt_n` vs `n`), `0` marking
/// losses on the bottom row, as in the paper's Figure 1.
pub fn render_time_series(rtt_or_zero_ms: &[f64], width: usize, height: usize) -> String {
    let mut out = String::new();
    if rtt_or_zero_ms.is_empty() {
        out.push_str("(empty series)\n");
        return out;
    }
    let hi = rtt_or_zero_ms
        .iter()
        .copied()
        .fold(0.0f64, f64::max)
        .max(1.0);
    let mut grid = vec![vec![b' '; width]; height];
    let n = rtt_or_zero_ms.len();
    for (i, &r) in rtt_or_zero_ms.iter().enumerate() {
        let gx = i * width / n;
        if r == 0.0 {
            grid[height - 1][gx] = b'0'; // loss marker on the axis
        } else {
            let gy = ((r / hi) * (height as f64 - 1.0)) as usize;
            grid[height - 1 - gy.min(height - 1)][gx] = b'+';
        }
    }
    out.push_str(&format!(
        "rtt_n vs n [0..{hi:.0} ms], {n} probes ('0' on axis = loss)\n"
    ));
    for row in grid {
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out
}

/// An ASCII bar chart of a histogram (Figures 8–9 style).
pub fn render_histogram(hist: &Histogram, max_width: usize) -> String {
    let mut out = String::new();
    let counts = hist.counts();
    let peak = counts.iter().copied().max().unwrap_or(0);
    if peak == 0 {
        out.push_str("(empty histogram)\n");
        return out;
    }
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let bar = (c as usize * max_width).div_ceil(peak as usize);
        out.push_str(&format!(
            "{:>8.1} ms | {} {}\n",
            hist.center(i),
            "#".repeat(bar),
            c
        ));
    }
    if hist.overflow() > 0 {
        out.push_str(&format!(
            "   (>{:.1} ms: {} samples)\n",
            hist.hi(),
            hist.overflow()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhasePoint;

    #[test]
    fn table3_layout() {
        let rows = vec![
            SweepRow {
                delta_ms: 8.0,
                ulp: 0.23,
                clp: 0.60,
                plg: 2.5,
                probe_utilization: 0.56,
            },
            SweepRow {
                delta_ms: 500.0,
                ulp: 0.10,
                clp: 0.09,
                plg: 1.1,
                probe_utilization: 0.009,
            },
        ];
        let t = render_table3(&rows);
        assert!(t.contains("delta(ms)"));
        assert!(t.contains("0.23"));
        assert!(t.contains("0.60"));
        assert!(t.contains("2.5"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn phase_plot_renders_points_and_diagonal() {
        let plot = PhasePlot {
            points: vec![
                PhasePoint { x: 140.0, y: 140.0 },
                PhasePoint { x: 150.0, y: 260.0 },
            ],
            delta_ms: 50.0,
            probe_bits: 576.0,
            clock_resolution_ms: 0.0,
        };
        let s = render_phase_plot(&plot, 40, 20);
        assert!(s.contains('o'));
        assert!(s.contains('.'));
        assert!(s.lines().count() == 21);
    }

    #[test]
    fn empty_phase_plot_is_graceful() {
        let plot = PhasePlot {
            points: vec![],
            delta_ms: 50.0,
            probe_bits: 576.0,
            clock_resolution_ms: 0.0,
        };
        assert!(render_phase_plot(&plot, 10, 5).contains("no phase points"));
    }

    #[test]
    fn time_series_marks_losses() {
        let s = render_time_series(&[140.0, 0.0, 150.0, 170.0], 20, 8);
        assert!(s.contains('0'));
        assert!(s.contains('+'));
    }

    #[test]
    fn histogram_bars_scale() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for _ in 0..10 {
            h.add(1.0);
        }
        h.add(5.0);
        h.add(42.0);
        let s = render_histogram(&h, 30);
        assert!(s.contains("##"));
        assert!(s.contains("10"));
        assert!(s.contains(">10.0 ms"));
    }
}
