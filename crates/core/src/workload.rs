//! Workload estimation from probe interarrival times (the paper's §4,
//! Figures 8–9).
//!
//! The quantity `g_n = w_{n+1} − w_n + δ = rtt_{n+1} − rtt_n + δ` is both
//! the interarrival time of returning probes and — by equation (6) —
//! `(b_n + P)/μ`, the service time of everything the bottleneck received
//! during the interval. Its distribution is multimodal:
//!
//! * a peak at `P/μ` — compressed probes draining back-to-back;
//! * a peak at `δ` — undisturbed probes (`w_{n+1} = w_n`);
//! * peaks at `(k·B + P)/μ` — probes that queued behind `k` bulk (FTP)
//!   packets of `B` bits each; the paper reads `B ≈ 488 bytes ≈ one FTP
//!   packet` off the third peak.

use probenet_netdyn::RttSeries;
use probenet_stats::{find_relative_peaks, Histogram};
use serde::{Deserialize, Serialize};

/// What a peak of the interarrival distribution means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeakLabel {
    /// `g ≈ P/μ`: probes compressed behind a large workload (eq. 3).
    Compressed,
    /// `g ≈ δ`: probes that saw an unchanged queue (eq. 1).
    Undisturbed,
    /// `g ≈ (k·B + P)/μ`: first probe behind `k` bulk packets.
    BulkPackets(u32),
    /// No expected position matched.
    Other,
}

/// One labeled peak.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LabeledPeak {
    /// Peak position in ms.
    pub position_ms: f64,
    /// Peak height as a fraction of samples per bin.
    pub height: f64,
    /// Interpretation.
    pub label: PeakLabel,
    /// The workload `b = μ·g − P` this position implies, in bytes
    /// (clamped at zero).
    pub implied_workload_bytes: f64,
}

/// The full workload analysis of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadAnalysis {
    /// Probe interval δ in ms.
    pub delta_ms: f64,
    /// Assumed bottleneck rate μ in bits/s.
    pub mu_bps: f64,
    /// The interarrival histogram (ms).
    pub histogram: Histogram,
    /// Detected, labeled peaks in position order.
    pub peaks: Vec<LabeledPeak>,
    /// Per-interval workload estimates `b̂_n` (bytes) via eq. (6), one per
    /// consecutive delivered pair, clamped at zero.
    pub workload_bytes: Vec<f64>,
}

/// The return interarrival series `g_n = rtt_{n+1} − rtt_n + δ` in ms, for
/// consecutive delivered probe pairs.
pub fn interarrival_series(series: &RttSeries) -> Vec<f64> {
    let delta = series.interval().as_millis_f64();
    series
        .records
        .windows(2)
        .filter_map(|w| match (w[0].rtt, w[1].rtt) {
            (Some(a), Some(b)) => Some((b as f64 - a as f64) / 1e6 + delta),
            _ => None,
        })
        .collect()
}

/// Equation (6) per interval: `b̂_n = μ·g_n − P`, in **bytes**, clamped at
/// zero (negative estimates mean the buffer emptied).
pub fn workload_estimates(series: &RttSeries, mu_bps: f64) -> Vec<f64> {
    let p_bits = series.wire_bytes as f64 * 8.0;
    interarrival_series(series)
        .into_iter()
        .map(|g_ms| ((mu_bps * g_ms / 1e3 - p_bits) / 8.0).max(0.0))
        .collect()
}

/// Run the full Figure-8/9 analysis.
///
/// * `mu_bps` — bottleneck rate (measured via the phase plot or known);
/// * `bulk_bits` — hypothesized bulk packet size `B` for labeling
///   (512 bytes in the calibrated scenarios);
/// * `max_ms` — histogram upper edge (e.g. `4·δ`).
///
/// # Panics
/// Panics if parameters are non-positive.
pub fn analyze_workload(
    series: &RttSeries,
    mu_bps: f64,
    bulk_bits: f64,
    max_ms: f64,
) -> WorkloadAnalysis {
    assert!(
        mu_bps > 0.0 && bulk_bits > 0.0 && max_ms > 0.0,
        "positive parameters"
    );
    let delta_ms = series.interval().as_millis_f64();
    let p_bits = series.wire_bytes as f64 * 8.0;
    let service_ms = p_bits / mu_bps * 1e3;
    let g = interarrival_series(series);

    let resolution_ms = series.clock_resolution_ns as f64 / 1e6;
    let bin = resolution_ms.max(0.5);
    let bins = ((max_ms / bin).ceil() as usize).max(10);
    let histogram = Histogram::from_data(&g, 0.0, max_ms, bins);
    let freqs = histogram.frequencies();
    let raw_peaks = find_relative_peaks(&freqs, 0.02, 2, 1);

    // Expected positions: P/μ, δ, and (k·B + P)/μ for k = 1..=8.
    let mut expected: Vec<(f64, PeakLabel)> = vec![
        (service_ms, PeakLabel::Compressed),
        (delta_ms, PeakLabel::Undisturbed),
    ];
    for k in 1..=8u32 {
        expected.push((
            (k as f64 * bulk_bits + p_bits) / mu_bps * 1e3,
            PeakLabel::BulkPackets(k),
        ));
    }
    let tol = (2.0 * bin).max(0.05 * delta_ms);

    let peaks = raw_peaks
        .into_iter()
        .map(|p| {
            let position_ms = histogram.center(p.index);
            let label = expected
                .iter()
                .filter(|(pos, _)| (pos - position_ms).abs() <= tol)
                .min_by(|a, b| {
                    (a.0 - position_ms)
                        .abs()
                        .partial_cmp(&(b.0 - position_ms).abs())
                        .expect("finite")
                })
                .map(|&(_, l)| l)
                .unwrap_or(PeakLabel::Other);
            LabeledPeak {
                position_ms,
                height: p.height,
                label,
                implied_workload_bytes: ((mu_bps * position_ms / 1e3 - p_bits) / 8.0).max(0.0),
            }
        })
        .collect();

    WorkloadAnalysis {
        delta_ms,
        mu_bps,
        histogram,
        peaks,
        workload_bytes: workload_estimates(series, mu_bps),
    }
}

impl WorkloadAnalysis {
    /// The peak labeled [`PeakLabel::Compressed`], if detected.
    pub fn compressed_peak(&self) -> Option<&LabeledPeak> {
        self.peaks.iter().find(|p| p.label == PeakLabel::Compressed)
    }

    /// The peak labeled [`PeakLabel::Undisturbed`], if detected.
    pub fn undisturbed_peak(&self) -> Option<&LabeledPeak> {
        self.peaks
            .iter()
            .find(|p| p.label == PeakLabel::Undisturbed)
    }

    /// The peak for `k` bulk packets, if detected.
    pub fn bulk_peak(&self, k: u32) -> Option<&LabeledPeak> {
        self.peaks
            .iter()
            .find(|p| p.label == PeakLabel::BulkPackets(k))
    }

    /// The paper's bulk-packet-size inference: the workload implied by the
    /// first bulk peak (its `b_n = μ(w_{n+1} − w_n + δ) − P` evaluates to
    /// ≈488 bytes on the INRIA–UMd path).
    pub fn inferred_bulk_bytes(&self) -> Option<f64> {
        self.bulk_peak(1).map(|p| p.implied_workload_bytes)
    }

    /// Mean estimated per-interval workload in bytes.
    pub fn mean_workload_bytes(&self) -> f64 {
        if self.workload_bytes.is_empty() {
            return 0.0;
        }
        self.workload_bytes.iter().sum::<f64>() / self.workload_bytes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use probenet_netdyn::{RttRecord, RttSeries};
    use probenet_sim::SimDuration;

    fn series_from_ms(delta_ms: u64, rtts: &[Option<f64>]) -> RttSeries {
        let records = rtts
            .iter()
            .enumerate()
            .map(|(n, r)| RttRecord {
                seq: n as u64,
                sent_at: n as u64 * delta_ms * 1_000_000,
                echoed_at: None,
                rtt: r.map(|ms| (ms * 1e6) as u64),
            })
            .collect();
        RttSeries::new(
            SimDuration::from_millis(delta_ms),
            72,
            SimDuration::ZERO,
            records,
        )
    }

    #[test]
    fn interarrival_is_delta_when_rtts_constant() {
        let s = series_from_ms(20, &[Some(140.0); 50]);
        let g = interarrival_series(&s);
        assert_eq!(g.len(), 49);
        assert!(g.iter().all(|&x| (x - 20.0).abs() < 1e-9));
    }

    #[test]
    fn losses_break_pairs() {
        let s = series_from_ms(20, &[Some(140.0), None, Some(140.0), Some(141.0)]);
        let g = interarrival_series(&s);
        assert_eq!(g, vec![21.0]);
    }

    #[test]
    fn workload_estimates_invert_equation6() {
        // g = 35 ms at μ = 128 kb/s, P = 576 bits: b = 128·35 − 576 bits
        // = 3904 bits = 488 bytes — the paper's own arithmetic.
        let s = series_from_ms(20, &[Some(140.0), Some(155.0)]); // diff 15, g = 35
        let w = workload_estimates(&s, 128_000.0);
        assert_eq!(w.len(), 1);
        assert!((w[0] - 488.0).abs() < 1e-6, "workload {}", w[0]);
    }

    #[test]
    fn negative_estimates_clamp_to_zero() {
        // Deep drain: diff −19 ms, g = 1 ms -> b̂ < 0 -> 0.
        let s = series_from_ms(20, &[Some(159.0), Some(140.0)]);
        let w = workload_estimates(&s, 128_000.0);
        assert_eq!(w, vec![0.0]);
    }

    /// Build a synthetic experiment with the three peak families of Fig. 8.
    fn synthetic_fig8_series() -> RttSeries {
        let delta = 20.0;
        let service = 4.5; // P/μ ms
        let ftp = 32.0; // 512 B at 128 kb/s, ms
        let mut rtts = Vec::new();
        let mut rtt: f64 = 140.0;
        // A repeating pattern: an FTP packet ahead (g = δ + ftp − δ ... i.e.
        // diff = ftp + service − δ), then compression drains, then quiet.
        for _ in 0..120 {
            rtts.push(Some(rtt));
            // One FTP packet arrives: next probe waits extra.
            rtt += ftp + service - delta; // g = ftp + service = 36.5
            rtts.push(Some(rtt));
            // Two compressed probes drain behind it.
            rtt += service - delta; // g = 4.5
            rtts.push(Some(rtt));
            rtt += service - delta;
            rtts.push(Some(rtt));
            // Queue empties; several quiet probes at base delay.
            rtt = 140.0;
            for _ in 0..3 {
                rtts.push(Some(rtt)); // g = 20
            }
        }
        series_from_ms(20, &rtts)
    }

    #[test]
    fn fig8_peaks_are_found_and_labeled() {
        let s = synthetic_fig8_series();
        let a = analyze_workload(&s, 128_000.0, 4096.0, 80.0);
        let compressed = a.compressed_peak().expect("compressed peak");
        assert!(
            (compressed.position_ms - 4.5).abs() < 1.0,
            "compressed at {}",
            compressed.position_ms
        );
        let undisturbed = a.undisturbed_peak().expect("undisturbed peak");
        assert!(
            (undisturbed.position_ms - 20.0).abs() < 1.0,
            "undisturbed at {}",
            undisturbed.position_ms
        );
        let bulk = a.bulk_peak(1).expect("bulk peak");
        assert!(
            (bulk.position_ms - 36.5).abs() < 1.5,
            "bulk at {}",
            bulk.position_ms
        );
        // The inferred bulk size is ≈512 bytes (the paper reads 488 from
        // its coarser bins).
        let b = a.inferred_bulk_bytes().expect("bulk size");
        assert!((b - 512.0).abs() < 30.0, "inferred {b} bytes");
    }

    #[test]
    fn quiet_path_has_single_undisturbed_peak() {
        let s = series_from_ms(20, &vec![Some(140.0); 300]);
        let a = analyze_workload(&s, 128_000.0, 4096.0, 80.0);
        assert_eq!(a.peaks.len(), 1);
        assert_eq!(a.peaks[0].label, PeakLabel::Undisturbed);
        // All estimates equal μδ − P (the buffer-empty upper bound).
        let expect = (128_000.0 * 0.020 - 576.0) / 8.0;
        assert!(a.workload_bytes.iter().all(|&b| (b - expect).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "positive parameters")]
    fn bad_mu_panics() {
        let s = series_from_ms(20, &[Some(1.0)]);
        analyze_workload(&s, 0.0, 1.0, 1.0);
    }
}
