//! Route-change detection from RTT baselines.
//!
//! The measurement companion to this paper (its ref \[21\], the NetDyn
//! studies) used the probe tool "to observe the dynamics of the Internet,
//! e.g. the changes in round trip delays caused by route changes". A route
//! change shifts the **fixed** component `D` of the RTT — visible as a
//! sustained jump of the series' lower envelope even while queueing noise
//! rides on top. [`detect_route_changes`] finds such baseline shifts.

use probenet_netdyn::RttSeries;
use serde::{Deserialize, Serialize};

/// A detected baseline shift.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteChange {
    /// Index (probe sequence position) of the first block after the shift.
    pub at_index: usize,
    /// Baseline (windowed-minimum RTT) before the shift, ms.
    pub before_ms: f64,
    /// Baseline after the shift, ms.
    pub after_ms: f64,
}

impl RouteChange {
    /// Size of the shift, ms (positive = path got longer).
    pub fn shift_ms(&self) -> f64 {
        self.after_ms - self.before_ms
    }
}

/// Detect sustained shifts of the RTT lower envelope.
///
/// The series is cut into blocks of `window` probes; each block's baseline
/// is its minimum delivered RTT (the fixed component is the infimum of the
/// delay, so minima are robust to queueing). Consecutive blocks whose
/// baselines differ by more than `threshold_ms` mark a change; runs of
/// drifting blocks are merged so one route change yields one report.
///
/// Blocks without any delivered probe are skipped.
///
/// # Panics
/// Panics if `window == 0` or `threshold_ms <= 0`.
pub fn detect_route_changes(
    series: &RttSeries,
    window: usize,
    threshold_ms: f64,
) -> Vec<RouteChange> {
    assert!(window > 0, "window must be positive");
    assert!(threshold_ms > 0.0, "threshold must be positive");
    // Per-block (start index, baseline).
    let mut blocks: Vec<(usize, f64)> = Vec::new();
    for (b, chunk) in series.records.chunks(window).enumerate() {
        let min = chunk
            .iter()
            .filter_map(|r| r.rtt)
            .min()
            .map(|ns| ns as f64 / 1e6);
        if let Some(m) = min {
            blocks.push((b * window, m));
        }
    }
    let mut changes = Vec::new();
    let mut i = 1;
    while i < blocks.len() {
        let (_, prev) = blocks[i - 1];
        let (start, cur) = blocks[i];
        if (cur - prev).abs() > threshold_ms {
            // Merge a run of consecutive shifting blocks (a change that
            // lands mid-block shows as two steps).
            let before = prev;
            let mut j = i;
            while j + 1 < blocks.len() && (blocks[j + 1].1 - blocks[j].1).abs() > threshold_ms {
                j += 1;
            }
            changes.push(RouteChange {
                at_index: start,
                before_ms: before,
                after_ms: blocks[j].1,
            });
            i = j + 1;
        } else {
            i += 1;
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use probenet_netdyn::{ExperimentConfig, RttRecord, SimExperiment};
    use probenet_sim::{Engine, Path, SimDuration, SimTime};

    fn series_from_ms(rtts: &[Option<f64>]) -> RttSeries {
        let records = rtts
            .iter()
            .enumerate()
            .map(|(n, r)| RttRecord {
                seq: n as u64,
                sent_at: n as u64 * 50_000_000,
                echoed_at: None,
                rtt: r.map(|ms| (ms * 1e6) as u64),
            })
            .collect();
        RttSeries::new(SimDuration::from_millis(50), 72, SimDuration::ZERO, records)
    }

    #[test]
    fn stable_series_has_no_changes() {
        let rtts: Vec<Option<f64>> = (0..500)
            .map(|i| Some(140.0 + (i % 17) as f64 * 3.0))
            .collect();
        let s = series_from_ms(&rtts);
        assert!(detect_route_changes(&s, 50, 5.0).is_empty());
    }

    #[test]
    fn single_step_is_detected_once() {
        let mut rtts: Vec<Option<f64>> = Vec::new();
        for i in 0..600 {
            let base = if i < 300 { 140.0 } else { 180.0 };
            rtts.push(Some(base + (i % 13) as f64 * 2.0));
        }
        let s = series_from_ms(&rtts);
        let changes = detect_route_changes(&s, 50, 10.0);
        assert_eq!(changes.len(), 1, "{changes:?}");
        assert_eq!(changes[0].at_index, 300);
        assert!((changes[0].shift_ms() - 40.0).abs() < 5.0);
    }

    #[test]
    fn shift_down_also_detected() {
        let mut rtts: Vec<Option<f64>> = Vec::new();
        for i in 0..400 {
            let base = if i < 200 { 200.0 } else { 150.0 };
            rtts.push(Some(base + (i % 7) as f64));
        }
        let s = series_from_ms(&rtts);
        let changes = detect_route_changes(&s, 40, 10.0);
        assert_eq!(changes.len(), 1);
        assert!(changes[0].shift_ms() < -40.0);
    }

    #[test]
    fn queueing_noise_does_not_trigger() {
        // Heavy but zero-floor-preserving queueing noise: baselines stay.
        let rtts: Vec<Option<f64>> = (0..800)
            .map(|i| {
                Some(
                    140.0
                        + if i % 5 == 0 {
                            0.0
                        } else {
                            (i % 97) as f64 * 4.0
                        },
                )
            })
            .collect();
        let s = series_from_ms(&rtts);
        assert!(detect_route_changes(&s, 80, 8.0).is_empty());
    }

    #[test]
    fn losses_are_tolerated() {
        let mut rtts: Vec<Option<f64>> = Vec::new();
        for i in 0..600 {
            if i % 3 == 0 {
                rtts.push(None);
                continue;
            }
            let base = if i < 300 { 140.0 } else { 120.0 };
            rtts.push(Some(base + (i % 11) as f64));
        }
        let s = series_from_ms(&rtts);
        let changes = detect_route_changes(&s, 50, 8.0);
        assert_eq!(changes.len(), 1);
        assert!(changes[0].shift_ms() < -15.0);
    }

    #[test]
    fn simulated_route_change_is_detected_end_to_end() {
        // Re-home the transatlantic hop 30 ms further away mid-experiment
        // and find the jump from the probe series alone.
        let path = Path::inria_umd_1992();
        let (bottleneck, _) = path.bottleneck();
        let cfg = ExperimentConfig::quick(SimDuration::from_millis(50), 1200);
        let exp = SimExperiment::new(cfg, path, 7);
        // SimExperiment drives its own engine; replicate its probe schedule
        // on a manual engine so we can inject the change.
        let mut engine = Engine::new(exp.path.clone(), 7);
        engine.schedule_propagation_change(
            bottleneck,
            SimTime::from_secs(30),
            SimDuration::from_micros(49_750 + 15_000),
        );
        for n in 0..1200u64 {
            engine.inject_probe(SimTime::from_millis(50 * n), 72, n);
        }
        engine.run();
        let records: Vec<RttRecord> = (0..1200u64)
            .map(|n| RttRecord {
                seq: n,
                sent_at: n * 50_000_000,
                echoed_at: None,
                rtt: None,
            })
            .collect();
        let mut records = records;
        for d in engine.probe_deliveries() {
            records[d.seq as usize].rtt = Some(d.rtt().as_nanos());
        }
        let series = RttSeries::new(SimDuration::from_millis(50), 72, SimDuration::ZERO, records);
        let changes = detect_route_changes(&series, 60, 10.0);
        assert_eq!(changes.len(), 1, "{changes:?}");
        // +15 ms propagation one way -> +30 ms RTT.
        assert!(
            (changes[0].shift_ms() - 30.0).abs() < 3.0,
            "shift {}",
            changes[0].shift_ms()
        );
        // Change lands at probe 600 (t = 30 s).
        assert!((540..=660).contains(&changes[0].at_index));
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        detect_route_changes(&series_from_ms(&[Some(1.0)]), 0, 1.0);
    }
}
