//! Property tests for the statistics substrate: conservation, monotonicity
//! and agreement-with-naive-reference invariants that must hold for any
//! input, not just the curated fixtures of the unit tests.

use proptest::prelude::*;

use probenet_stats::{autocorrelation, Ecdf, Histogram, Moments, P2Quantile};

/// Finite, reasonably scaled samples (no NaN/inf, no overflow drama).
fn samples(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6..1.0e6f64, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram mass conservation: every sample lands in exactly one of
    /// bins / underflow / overflow, whatever the data and binning.
    #[test]
    fn prop_histogram_conserves_mass(
        data in samples(1..400),
        lo in -1.0e5..1.0e5f64,
        width in 1.0e-3..1.0e5f64,
        bins in 1usize..60,
    ) {
        let hi = lo + width;
        let h = Histogram::from_data(&data, lo, hi, bins);
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(
            binned + h.underflow() + h.overflow(),
            data.len() as u64,
            "mass leaked: {} binned, {} under, {} over, {} samples",
            binned, h.underflow(), h.overflow(), data.len()
        );
        prop_assert_eq!(h.total(), data.len() as u64);
        // Densities integrate to the in-range fraction of the mass.
        let integral: f64 = h.density().iter().map(|d| d * h.bin_width()).sum();
        let in_range = binned as f64 / data.len() as f64;
        prop_assert!((integral - in_range).abs() < 1e-9,
            "density integral {integral} vs in-range fraction {in_range}");
    }

    /// Empirical-CDF quantiles are monotone in q and bounded by the data.
    #[test]
    fn prop_ecdf_quantiles_monotone_and_bounded(
        data in samples(1..300),
        qs in proptest::collection::vec(0.0..=1.0f64, 2..20),
    ) {
        let ecdf = Ecdf::new(&data);
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let v = ecdf.quantile(q);
            prop_assert!(v >= prev, "quantile({q}) = {v} < previous {prev}");
            prop_assert!(v >= lo && v <= hi, "quantile({q}) = {v} outside [{lo}, {hi}]");
            prev = v;
        }
        // The CDF itself is monotone too.
        prop_assert!(ecdf.eval(lo - 1.0) == 0.0);
        prop_assert!(ecdf.eval(hi + 1.0) == 1.0);
    }

    /// The streaming P² quantile estimate stays inside the data range.
    #[test]
    fn prop_p2_estimate_within_range(
        data in samples(5..300),
        q in 0.01..0.99f64,
    ) {
        let mut p2 = P2Quantile::new(q);
        for &x in &data {
            p2.push(x);
        }
        let est = p2.estimate().expect("non-empty stream");
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= lo && est <= hi, "P2({q}) = {est} outside [{lo}, {hi}]");
        prop_assert_eq!(p2.count(), data.len());
    }

    /// ACF normalization: lag 0 is exactly 1 and every lag is in [-1, 1]
    /// for non-constant series.
    #[test]
    fn prop_acf_lag0_is_one(
        data in samples(8..300),
        max_lag in 1usize..12,
    ) {
        // The measure-zero case of a constant vector holds vacuously (the
        // vendored proptest has no prop_assume, so guard instead).
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        if data.iter().any(|&x| (x - mean).abs() > 1e-9) {
            let acf = autocorrelation(&data, max_lag.min(data.len() - 1));
            prop_assert!((acf[0] - 1.0).abs() < 1e-12, "lag-0 ACF {}", acf[0]);
            for (k, &r) in acf.iter().enumerate() {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "acf[{k}] = {r}");
            }
        }
    }

    /// Streaming moments agree with the two-pass naive reference.
    #[test]
    fn prop_moments_match_naive_reference(data in samples(2..400)) {
        let m = Moments::from_slice(&data);
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        let scale = mean.abs().max(1.0);
        prop_assert!((m.mean() - mean).abs() < 1e-9 * scale,
            "mean {} vs naive {}", m.mean(), mean);
        prop_assert!((m.variance() - var).abs() < 1e-6 * var.max(1.0),
            "variance {} vs naive {}", m.variance(), var);
        let lo = data.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(m.min(), lo);
        prop_assert_eq!(m.max(), hi);
        prop_assert_eq!(m.count(), data.len() as u64);
    }

    /// Merging split halves equals accumulating the whole stream.
    #[test]
    fn prop_moments_merge_consistency(
        a in samples(1..200),
        b in samples(1..200),
    ) {
        let mut left = Moments::from_slice(&a);
        let right = Moments::from_slice(&b);
        left.merge(&right);
        let whole: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let full = Moments::from_slice(&whole);
        prop_assert_eq!(left.count(), full.count());
        let scale = full.mean().abs().max(1.0);
        prop_assert!((left.mean() - full.mean()).abs() < 1e-9 * scale);
        prop_assert!(
            (left.variance() - full.variance()).abs() < 1e-6 * full.variance().max(1.0),
            "merged variance {} vs whole {}", left.variance(), full.variance()
        );
    }
}
