//! Radix-2 FFT and periodogram, from scratch.
//!
//! The paper's ref \[19\] used spectral analysis of average delays to expose a
//! diurnal congestion cycle; [`periodogram`] provides the same capability on
//! probe delay series.

use std::f64::consts::PI;

/// A complex number as `(re, im)`; deliberately minimal.
pub type Complex = (f64, f64);

fn cmul(a: Complex, b: Complex) -> Complex {
    (a.0 * b.0 - a.1 * b.1, a.0 * b.1 + a.1 * b.0)
}

fn cadd(a: Complex, b: Complex) -> Complex {
    (a.0 + b.0, a.1 + b.1)
}

fn csub(a: Complex, b: Complex) -> Complex {
    (a.0 - b.0, a.1 - b.1)
}

/// Smallest power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
/// Panics unless the length is a power of two.
pub fn fft(data: &mut [Complex]) {
    fft_dir(data, false)
}

/// Inverse FFT (normalized by 1/n).
///
/// # Panics
/// Panics unless the length is a power of two.
pub fn ifft(data: &mut [Complex]) {
    fft_dir(data, true);
    let n = data.len() as f64;
    for x in data.iter_mut() {
        x.0 /= n;
        x.1 /= n;
    }
}

fn fft_dir(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut w = (1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = cmul(data[i + k + len / 2], w);
                data[i + k] = cadd(u, v);
                data[i + k + len / 2] = csub(u, v);
                w = cmul(w, wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Naive O(n²) DFT, used as the oracle in tests.
pub fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = (0.0, 0.0);
            for (t, &x) in data.iter().enumerate() {
                let ang = -2.0 * PI * (k * t) as f64 / n as f64;
                acc = cadd(acc, cmul(x, (ang.cos(), ang.sin())));
            }
            acc
        })
        .collect()
}

/// One spectral line of a periodogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralLine {
    /// Frequency in cycles per sample.
    pub frequency: f64,
    /// Power at that frequency.
    pub power: f64,
}

/// Periodogram of a real series: the series is mean-removed, zero-padded to
/// a power of two, and transformed; returns power at the positive
/// frequencies `k / n_padded` for `k = 1..n_padded/2`.
///
/// Returns an empty vector for series shorter than 2 samples.
///
/// ```
/// use probenet_stats::dominant_frequency;
/// // A pure 8-cycles-per-256-samples sine.
/// let xs: Vec<f64> = (0..256)
///     .map(|i| (std::f64::consts::TAU * 8.0 * i as f64 / 256.0).sin())
///     .collect();
/// assert_eq!(dominant_frequency(&xs), Some(8.0 / 256.0));
/// ```
pub fn periodogram(xs: &[f64]) -> Vec<SpectralLine> {
    if xs.len() < 2 {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let n = next_pow2(xs.len());
    let mut data: Vec<Complex> = xs.iter().map(|&x| (x - mean, 0.0)).collect();
    data.resize(n, (0.0, 0.0));
    fft(&mut data);
    (1..n / 2)
        .map(|k| {
            let (re, im) = data[k];
            SpectralLine {
                frequency: k as f64 / n as f64,
                power: (re * re + im * im) / xs.len() as f64,
            }
        })
        .collect()
}

/// The frequency (cycles/sample) with the most power, if any.
pub fn dominant_frequency(xs: &[f64]) -> Option<f64> {
    periodogram(xs)
        .into_iter()
        .max_by(|a, b| a.power.partial_cmp(&b.power).expect("finite powers"))
        .map(|l| l.frequency)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a.0 - b.0).abs() < tol && (a.1 - b.1).abs() < tol
    }

    #[test]
    fn fft_matches_naive_dft() {
        let data: Vec<Complex> = (0..64)
            .map(|i| ((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let want = dft_naive(&data);
        let mut got = data.clone();
        fft(&mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!(close(*g, *w, 1e-9), "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let data: Vec<Complex> = (0..128).map(|i| (i as f64, -(i as f64) / 2.0)).collect();
        let mut x = data.clone();
        fft(&mut x);
        ifft(&mut x);
        for (g, w) in x.iter().zip(&data) {
            assert!(close(*g, *w, 1e-9));
        }
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![(0.0, 0.0); 16];
        x[0] = (1.0, 0.0);
        fft(&mut x);
        for v in x {
            assert!(close(v, (1.0, 0.0), 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let mut x = vec![(0.0, 0.0); 12];
        fft(&mut x);
    }

    #[test]
    fn periodogram_finds_sine_frequency() {
        // 8 cycles over 256 samples -> frequency 1/32 = 0.03125.
        let xs: Vec<f64> = (0..256)
            .map(|i| (2.0 * PI * 8.0 * i as f64 / 256.0).sin())
            .collect();
        let f = dominant_frequency(&xs).unwrap();
        assert!((f - 8.0 / 256.0).abs() < 1e-12, "dominant {f}");
    }

    #[test]
    fn periodogram_with_dc_offset_ignores_mean() {
        let xs: Vec<f64> = (0..128)
            .map(|i| 100.0 + (2.0 * PI * 4.0 * i as f64 / 128.0).sin())
            .collect();
        let f = dominant_frequency(&xs).unwrap();
        assert!((f - 4.0 / 128.0).abs() < 1e-12, "dominant {f}");
    }

    #[test]
    fn periodogram_handles_non_pow2_lengths() {
        let xs: Vec<f64> = (0..300)
            .map(|i| (2.0 * PI * 10.0 * i as f64 / 300.0).sin())
            .collect();
        // Padded to 512; the sine at 10/300 Hz lands near 17/512.
        let f = dominant_frequency(&xs).unwrap();
        assert!((f - 10.0 / 300.0).abs() < 0.005, "dominant {f}");
    }

    #[test]
    fn short_series_yield_empty() {
        assert!(periodogram(&[1.0]).is_empty());
        assert_eq!(dominant_frequency(&[]), None);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1000), 1024);
    }
}
