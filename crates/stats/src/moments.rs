//! Streaming summary statistics (Welford's algorithm) and basic batch
//! helpers.

/// Numerically stable streaming mean/variance/extremes.
#[derive(Debug, Clone, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut m = Moments::new();
        for &x in xs {
            m.push(x);
        }
        m
    }

    /// Add one observation (Welford update).
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population variance (divides by n).
    pub fn variance_population(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation (std/mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean() == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean().abs()
        }
    }

    /// The raw accumulator state, for serialization. Field-for-field with
    /// the internal representation, so `from_state(state())` is bit-exact.
    pub fn state(&self) -> MomentsState {
        MomentsState {
            n: self.n,
            mean: self.mean,
            m2: self.m2,
            min: self.min,
            max: self.max,
        }
    }

    /// Rebuild from a previously captured [`MomentsState`].
    ///
    /// Total: hostile states are rejected instead of producing an
    /// accumulator whose accessors could emit NaN into serialized reports.
    /// An empty state must be canonical (the exact [`Moments::new`] values);
    /// a non-empty state must be finite with `m2 ≥ 0` and `min ≤ max`.
    pub fn from_state(s: MomentsState) -> Result<Self, &'static str> {
        if s.n == 0 {
            let canonical = s.mean == 0.0
                && s.mean.is_sign_positive()
                && s.m2 == 0.0
                && s.m2.is_sign_positive()
                && s.min == f64::INFINITY
                && s.max == f64::NEG_INFINITY;
            if !canonical {
                return Err("moments: non-canonical empty state");
            }
        } else {
            if !(s.mean.is_finite() && s.m2.is_finite() && s.min.is_finite() && s.max.is_finite()) {
                return Err("moments: non-finite accumulator");
            }
            if s.m2 < 0.0 {
                return Err("moments: negative m2");
            }
            if s.min > s.max {
                return Err("moments: min above max");
            }
        }
        Ok(Moments {
            n: s.n,
            mean: s.mean,
            m2: s.m2,
            min: s.min,
            max: s.max,
        })
    }

    /// Merge another accumulator (parallel Welford combination).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The raw [`Moments`] accumulator state: exactly the internal fields, in
/// declaration order, so codecs can round-trip an accumulator bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomentsState {
    /// Number of observations.
    pub n: u64,
    /// Running mean (Welford).
    pub mean: f64,
    /// Sum of squared deviations from the running mean.
    pub m2: f64,
    /// Smallest observation (`+inf` when `n == 0`).
    pub min: f64,
    /// Largest observation (`-inf` when `n == 0`).
    pub max: f64,
}

/// Sample Pearson correlation of two equal-length series.
///
/// Returns 0 for degenerate inputs (length < 2 or zero variance).
///
/// # Panics
/// Panics if the lengths differ.
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs equal lengths");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Ordinary least squares fit `y = a + b x`; returns `(intercept, slope)`.
///
/// Returns `(mean(y), 0)` when x has no variance.
///
/// # Panics
/// Panics if lengths differ or the input is empty.
pub fn ols(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "ols needs equal lengths");
    assert!(!xs.is_empty(), "ols needs data");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for i in 0..xs.len() {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
    }
    if sxx == 0.0 {
        return (my, 0.0);
    }
    let b = sxy / sxx;
    (my - b * mx, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_small_sample() {
        let m = Moments::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        // Population variance of this classic sample is 4.
        assert!((m.variance_population() - 4.0).abs() < 1e-12);
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
    }

    #[test]
    fn empty_is_safe() {
        let m = Moments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.cv(), 0.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(37);
        let mut m1 = Moments::from_slice(a);
        let m2 = Moments::from_slice(b);
        m1.merge(&m2);
        let all = Moments::from_slice(&xs);
        assert_eq!(m1.count(), all.count());
        assert!((m1.mean() - all.mean()).abs() < 1e-10);
        assert!((m1.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(m1.min(), all.min());
        assert_eq!(m1.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut m = Moments::from_slice(&xs);
        m.merge(&Moments::new());
        assert_eq!(m.count(), 3);
        let mut e = Moments::new();
        e.merge(&Moments::from_slice(&xs));
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stability_with_large_offset() {
        // Welford must not lose precision with a large common offset.
        let base = 1e12;
        let m = Moments::from_slice(&[base + 1.0, base + 2.0, base + 3.0]);
        assert!((m.variance() - 1.0).abs() < 1e-6, "var {}", m.variance());
    }

    #[test]
    fn correlation_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((correlation(&x, &y) - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((correlation(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_degenerate_is_zero() {
        assert_eq!(correlation(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(correlation(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn ols_recovers_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 - 0.5 * x).collect();
        let (a, b) = ols(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-10);
        assert!((b + 0.5).abs() < 1e-10);
    }

    #[test]
    fn ols_constant_x() {
        let (a, b) = ols(&[2.0, 2.0], &[5.0, 7.0]);
        assert_eq!((a, b), (6.0, 0.0));
    }
}
