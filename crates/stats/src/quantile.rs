//! Streaming quantile estimation (the P² algorithm).
//!
//! Long probing campaigns produce delay streams too large to keep sorted;
//! P² (Jain & Chlamtac, 1985 — contemporary with the paper's
//! instrumentation constraints) tracks any single quantile with five
//! markers and O(1) work per observation.

/// A P² estimator for the `q`-quantile of a stream.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimated values at the marker positions).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation counts).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// First five observations, used for initialization.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Track the `q`-quantile, `0 < q < 1`.
    ///
    /// # Panics
    /// Panics if `q` is outside `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Observations seen so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
                for i in 0..5 {
                    self.heights[i] = self.initial[i];
                }
            }
            return;
        }

        // Find the cell k containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust the interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let can_up = self.positions[i + 1] - self.positions[i] > 1.0;
            let can_down = self.positions[i - 1] - self.positions[i] < -1.0;
            if (d >= 1.0 && can_up) || (d <= -1.0 && can_down) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                    self.heights[i] = parabolic;
                } else {
                    self.heights[i] = self.linear(i, d);
                }
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, q0, qp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n0, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        q0 + d / (np - nm)
            * ((n0 - nm + d) * (qp - q0) / (np - n0) + (np - n0 - d) * (q0 - qm) / (n0 - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate. With fewer than 5 observations, the exact
    /// sample quantile of what has been seen (`None` if empty).
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut v = self.initial.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
            let rank = ((self.q * v.len() as f64).ceil() as usize).clamp(1, v.len());
            return Some(v[rank - 1]);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_stream(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    fn exact_quantile(xs: &[f64], q: f64) -> f64 {
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
        v[rank - 1]
    }

    #[test]
    fn median_of_uniform_stream() {
        let xs = lcg_stream(100_000, 1);
        let mut p2 = P2Quantile::new(0.5);
        for &x in &xs {
            p2.push(x);
        }
        let est = p2.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.01, "median estimate {est}");
    }

    #[test]
    fn tail_quantiles_track_exact_values() {
        let xs = lcg_stream(200_000, 2);
        for &q in &[0.9, 0.95, 0.99] {
            let mut p2 = P2Quantile::new(q);
            for &x in &xs {
                p2.push(x);
            }
            let est = p2.estimate().unwrap();
            let exact = exact_quantile(&xs, q);
            assert!(
                (est - exact).abs() < 0.01,
                "q {q}: estimate {est} exact {exact}"
            );
        }
    }

    #[test]
    fn skewed_stream() {
        // Squaring a uniform sharply skews the distribution; P² must still
        // track the upper tail. Exact p90 of U² is 0.81.
        let xs: Vec<f64> = lcg_stream(100_000, 3).iter().map(|x| x * x).collect();
        let mut p2 = P2Quantile::new(0.9);
        for &x in &xs {
            p2.push(x);
        }
        let est = p2.estimate().unwrap();
        assert!((est - 0.81).abs() < 0.02, "p90 {est}");
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p2 = P2Quantile::new(0.5);
        assert!(p2.estimate().is_none());
        for (i, &x) in [5.0, 1.0, 3.0].iter().enumerate() {
            p2.push(x);
            assert_eq!(p2.count(), i + 1);
        }
        // Exact median of {1, 3, 5} with nearest-rank: 3.
        assert_eq!(p2.estimate(), Some(3.0));
    }

    #[test]
    fn monotone_stream() {
        let mut p2 = P2Quantile::new(0.25);
        for i in 0..10_000 {
            p2.push(i as f64);
        }
        let est = p2.estimate().unwrap();
        assert!((est - 2500.0).abs() < 120.0, "p25 {est}");
    }

    #[test]
    fn constant_stream() {
        let mut p2 = P2Quantile::new(0.9);
        for _ in 0..1000 {
            p2.push(7.0);
        }
        assert_eq!(p2.estimate(), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1)")]
    fn bad_quantile_panics() {
        P2Quantile::new(1.0);
    }
}
