//! Peak detection in (histogram) densities.
//!
//! The paper reads the Internet workload off the **multimodal** distribution
//! of `w_{n+1} − w_n + δ` (its Figures 8–9): the leftmost peak sits at
//! `P/μ`, the next at δ, and further peaks at δ plus multiples of the FTP
//! packet service time. [`find_peaks`] locates those modes automatically.

/// One detected peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Index into the input series.
    pub index: usize,
    /// Height at the peak (after smoothing, if any was applied by caller).
    pub height: f64,
}

/// Moving-average smoothing with a centered window of `2*half + 1` points
/// (shrunk at the edges). `half == 0` returns the input unchanged.
pub fn smooth(xs: &[f64], half: usize) -> Vec<f64> {
    if half == 0 || xs.is_empty() {
        return xs.to_vec();
    }
    (0..xs.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(xs.len());
            xs[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Find local maxima of `xs` that are at least `min_height` tall and at
/// least `min_separation` indices apart. When two candidate peaks are too
/// close, the taller one wins.
///
/// Plateau handling: the first index of a flat top is reported.
pub fn find_peaks(xs: &[f64], min_height: f64, min_separation: usize) -> Vec<Peak> {
    let n = xs.len();
    let mut candidates: Vec<Peak> = Vec::new();
    for i in 0..n {
        let h = xs[i];
        if h < min_height {
            continue;
        }
        let left_ok = i == 0 || xs[i - 1] < h;
        // Skip forward over any plateau to find the next distinct value.
        let mut j = i + 1;
        while j < n && xs[j] == h {
            j += 1;
        }
        let right_ok = j == n || xs[j] < h;
        if left_ok && right_ok {
            candidates.push(Peak {
                index: i,
                height: h,
            });
        }
    }
    // Enforce separation, preferring taller peaks.
    candidates.sort_by(|a, b| b.height.partial_cmp(&a.height).expect("finite heights"));
    let mut kept: Vec<Peak> = Vec::new();
    for c in candidates {
        if kept
            .iter()
            .all(|k| k.index.abs_diff(c.index) >= min_separation.max(1))
        {
            kept.push(c);
        }
    }
    kept.sort_by_key(|p| p.index);
    kept
}

/// Convenience: peaks of a histogram-like density with heights relative to
/// the global maximum (`min_rel` in `[0,1]`), pre-smoothed with `smooth_half`.
pub fn find_relative_peaks(
    xs: &[f64],
    min_rel: f64,
    min_separation: usize,
    smooth_half: usize,
) -> Vec<Peak> {
    let sm = smooth(xs, smooth_half);
    let max = sm.iter().copied().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return Vec::new();
    }
    find_peaks(&sm, min_rel * max, min_separation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_isolated_peaks() {
        //                    0    1    2    3    4    5    6    7    8
        let xs = [0.0, 1.0, 0.0, 0.0, 3.0, 0.0, 0.0, 2.0, 0.0];
        let peaks = find_peaks(&xs, 0.5, 1);
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![1, 4, 7]);
    }

    #[test]
    fn min_height_filters() {
        let xs = [0.0, 1.0, 0.0, 3.0, 0.0];
        let peaks = find_peaks(&xs, 2.0, 1);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 3);
        assert_eq!(peaks[0].height, 3.0);
    }

    #[test]
    fn separation_keeps_taller() {
        let xs = [0.0, 2.0, 0.5, 3.0, 0.0];
        // Peaks at 1 and 3 are 2 apart; with min separation 3 only the
        // taller (index 3) survives.
        let peaks = find_peaks(&xs, 0.1, 3);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 3);
    }

    #[test]
    fn plateau_reports_first_index() {
        let xs = [0.0, 5.0, 5.0, 5.0, 0.0];
        let peaks = find_peaks(&xs, 1.0, 1);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 1);
    }

    #[test]
    fn endpoint_peaks_are_detected() {
        let xs = [4.0, 1.0, 0.0, 1.0, 4.0];
        let peaks = find_peaks(&xs, 0.5, 1);
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        assert_eq!(idx, vec![0, 4]);
    }

    #[test]
    fn monotone_series_has_one_endpoint_peak() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let peaks = find_peaks(&xs, 0.0, 1);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 3);
    }

    #[test]
    fn smoothing_window_math() {
        let xs = [0.0, 0.0, 9.0, 0.0, 0.0];
        let sm = smooth(&xs, 1);
        assert_eq!(sm, vec![0.0, 3.0, 3.0, 3.0, 0.0]);
        assert_eq!(smooth(&xs, 0), xs.to_vec());
    }

    #[test]
    fn smoothing_suppresses_noise_peaks() {
        // A jittery shoulder around one true mode.
        let xs = [0.0, 0.2, 0.1, 0.3, 5.0, 4.9, 5.1, 0.2, 0.1, 0.0];
        let peaks = find_relative_peaks(&xs, 0.5, 2, 1);
        assert_eq!(peaks.len(), 1, "peaks: {peaks:?}");
        assert!((4..=6).contains(&peaks[0].index));
    }

    #[test]
    fn empty_and_flat_inputs() {
        assert!(find_peaks(&[], 0.0, 1).is_empty());
        assert!(find_relative_peaks(&[0.0, 0.0], 0.1, 1, 0).is_empty());
        // A constant series is one big plateau with no strict neighbours:
        // its first index is reported (height above threshold).
        let flat = [2.0, 2.0, 2.0];
        let peaks = find_peaks(&flat, 1.0, 1);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 0);
    }
}
