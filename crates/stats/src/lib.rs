//! # probenet-stats
//!
//! The statistics substrate for probe-delay analysis, implemented from
//! scratch (no numeric dependencies):
//!
//! * [`moments`] — streaming mean/variance (Welford), correlation, OLS.
//! * [`histogram`] — fixed-bin histograms with mass-conserving gutters, and
//!   empirical CDFs with quantiles and a KS statistic.
//! * [`acf`] — autocovariance / autocorrelation.
//! * [`mod@fft`] — radix-2 FFT and periodogram (spectral view of delay series,
//!   as in the paper's ref \[19\]).
//! * [`fit`] — exponential, gamma (MoM + MLE), and the "constant plus
//!   gamma" delay model of ref \[19\].
//! * [`ar`] — Yule–Walker AR(p) fitting via Levinson–Durbin and one-step
//!   prediction (the ARMA adequacy question of the paper's §3).
//! * [`peaks`] — multimodal-density peak detection (reads the workload
//!   peaks off the paper's Figures 8–9).
//! * [`independence`] — runs test and χ² lag-1 independence test (the
//!   "losses are essentially random" claim, §5).
//! * [`special`] — log-gamma, digamma, trigamma, incomplete gamma.

pub mod acf;
pub mod ar;
pub mod fft;
pub mod fit;
pub mod histogram;
pub mod independence;
pub mod moments;
pub mod peaks;
pub mod quantile;
pub mod special;
pub mod timescale;

pub use acf::{autocorrelation, autocovariance, decorrelation_lag};
pub use ar::{fit_best_order, levinson_durbin, ArModel};
pub use fft::{dominant_frequency, fft, ifft, next_pow2, periodogram, SpectralLine};
pub use fit::{ExponentialFit, GammaFit, ShiftedGammaFit};
pub use histogram::{Ecdf, Histogram};
pub use independence::{
    chi2_2x2, lag1_independence, lag1_independence_from_counts, ljung_box, runs_test,
    runs_test_from_counts, two_sided_normal_p, Chi2Test, LjungBoxTest, RunsTest,
};
pub use moments::{correlation, ols, Moments, MomentsState};
pub use peaks::{find_peaks, find_relative_peaks, smooth, Peak};
pub use quantile::P2Quantile;
pub use special::{digamma, gamma_cdf, ln_gamma, reg_lower_gamma, trigamma};
pub use timescale::{
    aggregate_variance, hurst_aggregate_variance, variance_time_plot, VariancePoint,
};
