//! Autoregressive (AR) models via Yule–Walker / Levinson–Durbin.
//!
//! The paper notes (§3) parallel work "examining whether ARMA models are
//! adequate to model queueing delays", since predictive congestion-control
//! mechanisms rely on such models. This module supplies the AR half: fit an
//! AR(p) to a delay series, predict one step ahead, and measure how much
//! the model actually explains.

use crate::acf::autocovariance;

/// A fitted AR(p) model: `x_t = c + Σ φ_i (x_{t-i} - mean) + e_t` written in
/// mean-deviation form.
#[derive(Debug, Clone, PartialEq)]
pub struct ArModel {
    /// Series mean (the model operates on deviations from it).
    pub mean: f64,
    /// AR coefficients φ₁..φ_p.
    pub coeffs: Vec<f64>,
    /// Innovation (one-step prediction error) variance from the recursion.
    pub noise_variance: f64,
}

/// Levinson–Durbin recursion: from autocovariances `acov[0..=p]`, compute
/// AR(p) coefficients and the innovation variance.
///
/// Returns `(coeffs, noise_variance)`.
///
/// # Panics
/// Panics if `acov` is shorter than `p + 1` or `acov[0] <= 0`.
pub fn levinson_durbin(acov: &[f64], p: usize) -> (Vec<f64>, f64) {
    assert!(acov.len() > p, "need autocovariances up to lag p");
    assert!(acov[0] > 0.0, "zero-variance series cannot be fit");
    let mut a = vec![0.0f64; p + 1]; // a[1..=k] current coefficients
    let mut e = acov[0];
    for k in 1..=p {
        let mut acc = acov[k];
        for j in 1..k {
            acc -= a[j] * acov[k - j];
        }
        let kappa = acc / e;
        let mut new_a = a.clone();
        new_a[k] = kappa;
        for j in 1..k {
            new_a[j] = a[j] - kappa * a[k - j];
        }
        a = new_a;
        e *= 1.0 - kappa * kappa;
        if e <= 0.0 {
            // Perfectly predictable series; stop with a floor.
            e = f64::EPSILON * acov[0];
            break;
        }
    }
    (a[1..=p].to_vec(), e)
}

impl ArModel {
    /// Fit an AR(p) to `xs` by Yule–Walker.
    ///
    /// # Panics
    /// Panics if `p == 0`, the series is shorter than `p + 1`, or it has
    /// zero variance.
    pub fn fit(xs: &[f64], p: usize) -> Self {
        assert!(p > 0, "AR order must be positive");
        assert!(xs.len() > p, "series too short for AR({p})");
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let acov = autocovariance(xs, p);
        let (coeffs, noise_variance) = levinson_durbin(&acov, p);
        ArModel {
            mean,
            coeffs,
            noise_variance,
        }
    }

    /// Model order p.
    pub fn order(&self) -> usize {
        self.coeffs.len()
    }

    /// One-step-ahead prediction given the most recent `history`
    /// (`history[history.len()-1]` is the latest observation).
    ///
    /// # Panics
    /// Panics if fewer than `p` observations are supplied.
    pub fn predict_next(&self, history: &[f64]) -> f64 {
        let p = self.order();
        assert!(history.len() >= p, "need at least p history points");
        let mut acc = self.mean;
        for (i, phi) in self.coeffs.iter().enumerate() {
            acc += phi * (history[history.len() - 1 - i] - self.mean);
        }
        acc
    }

    /// Mean squared one-step prediction error over a series (predicting
    /// `xs[t]` from `xs[..t]` for `t >= p`).
    pub fn one_step_mse(&self, xs: &[f64]) -> f64 {
        let p = self.order();
        if xs.len() <= p {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut count = 0usize;
        for t in p..xs.len() {
            let pred = self.predict_next(&xs[..t]);
            let err = xs[t] - pred;
            sum += err * err;
            count += 1;
        }
        sum / count as f64
    }

    /// Akaike information criterion (Gaussian innovations):
    /// `n ln(σ²) + 2p`, lower is better.
    pub fn aic(&self, n: usize) -> f64 {
        n as f64 * self.noise_variance.max(f64::MIN_POSITIVE).ln() + 2.0 * self.order() as f64
    }
}

/// Fit AR models of order `1..=max_p` and return the one minimizing AIC.
///
/// # Panics
/// Panics if the series is too short for order 1.
pub fn fit_best_order(xs: &[f64], max_p: usize) -> ArModel {
    assert!(max_p >= 1, "need max order >= 1");
    let mut best: Option<ArModel> = None;
    for p in 1..=max_p.min(xs.len().saturating_sub(1)) {
        let m = ArModel::fit(xs, p);
        let better = match &best {
            None => true,
            Some(b) => m.aic(xs.len()) < b.aic(xs.len()),
        };
        if better {
            best = Some(m);
        }
    }
    best.expect("at least order 1 fit")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic AR(1) generator with LCG noise.
    fn ar1_series(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        let mut x = 0.0;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let e = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                x = phi * x + e;
                x
            })
            .collect()
    }

    #[test]
    fn recovers_ar1_coefficient() {
        let xs = ar1_series(0.7, 50_000, 42);
        let m = ArModel::fit(&xs, 1);
        assert!(
            (m.coeffs[0] - 0.7).abs() < 0.02,
            "phi {} want 0.7",
            m.coeffs[0]
        );
        // Innovation variance should approach Var(e) = 1/12.
        assert!(
            (m.noise_variance - 1.0 / 12.0).abs() < 0.01,
            "noise var {}",
            m.noise_variance
        );
    }

    #[test]
    fn ar2_on_ar1_data_has_tiny_second_coefficient() {
        let xs = ar1_series(0.6, 50_000, 7);
        let m = ArModel::fit(&xs, 2);
        assert!((m.coeffs[0] - 0.6).abs() < 0.03);
        assert!(m.coeffs[1].abs() < 0.03, "phi2 {}", m.coeffs[1]);
    }

    #[test]
    fn prediction_reduces_error_versus_mean() {
        let xs = ar1_series(0.9, 20_000, 3);
        let m = ArModel::fit(&xs, 1);
        let mse = m.one_step_mse(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        // Strong AR(1): prediction should explain most of the variance.
        assert!(mse < 0.3 * var, "mse {mse} var {var}");
    }

    #[test]
    fn predict_next_formula() {
        let m = ArModel {
            mean: 10.0,
            coeffs: vec![0.5, 0.25],
            noise_variance: 1.0,
        };
        // x̂ = 10 + 0.5 (12-10) + 0.25 (8-10) = 10.5
        let pred = m.predict_next(&[8.0, 12.0]);
        assert!((pred - 10.5).abs() < 1e-12);
    }

    #[test]
    fn aic_selects_parsimonious_order() {
        let xs = ar1_series(0.8, 30_000, 11);
        let best = fit_best_order(&xs, 6);
        assert!(best.order() <= 3, "selected order {}", best.order());
        assert!((best.coeffs[0] - 0.8).abs() < 0.05);
    }

    #[test]
    fn levinson_durbin_white_noise_gives_zero_coeffs() {
        // For white noise the true autocovariance is (v, 0, 0, ...).
        let (coeffs, noise) = levinson_durbin(&[2.0, 0.0, 0.0, 0.0], 3);
        assert!(coeffs.iter().all(|c| c.abs() < 1e-12));
        assert!((noise - 2.0).abs() < 1e-12);
    }

    #[test]
    fn levinson_durbin_exact_ar1_autocovariance() {
        // AR(1) with phi=0.5, sigma²=1: acov[k] = phi^k / (1 - phi²).
        let v = 1.0 / (1.0 - 0.25);
        let acov = [v, 0.5 * v, 0.25 * v, 0.125 * v];
        let (coeffs, noise) = levinson_durbin(&acov, 3);
        assert!((coeffs[0] - 0.5).abs() < 1e-12);
        assert!(coeffs[1].abs() < 1e-12);
        assert!(coeffs[2].abs() < 1e-12);
        assert!((noise - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_series_panics() {
        ArModel::fit(&[1.0, 2.0], 5);
    }
}
