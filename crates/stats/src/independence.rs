//! Randomness and independence tests for binary sequences.
//!
//! The paper's headline loss finding is that probe losses "are essentially
//! random unless the probe traffic uses a large fraction of the available
//! bandwidth". These tests make that claim checkable: the Wald–Wolfowitz
//! runs test and a χ² test of lag-1 independence on the loss indicator
//! sequence.

use crate::special::reg_lower_gamma;

/// Result of the Wald–Wolfowitz runs test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunsTest {
    /// Observed number of runs.
    pub runs: usize,
    /// Expected runs under independence.
    pub expected: f64,
    /// Normal z-score of the observed count.
    pub z: f64,
    /// Two-sided p-value (normal approximation).
    pub p_value: f64,
}

/// Wald–Wolfowitz runs test on a binary sequence. Returns `None` when the
/// sequence is degenerate (all one value, or fewer than 2 samples), where
/// the test is undefined.
pub fn runs_test(xs: &[bool]) -> Option<RunsTest> {
    let n1 = xs.iter().filter(|&&b| b).count();
    let n2 = xs.len() - n1;
    if xs.len() < 2 {
        return None;
    }
    let runs = 1 + xs.windows(2).filter(|w| w[0] != w[1]).count();
    runs_test_from_counts(n1, n2, runs)
}

/// [`runs_test`] from sufficient statistics: `n1` trues, `n2` falses and
/// the observed number of runs (`1 +` the count of unequal adjacent pairs).
/// This is everything a streaming fold has to retain to reproduce the batch
/// test bit-for-bit; the two entry points share one code path.
pub fn runs_test_from_counts(n1: usize, n2: usize, runs: usize) -> Option<RunsTest> {
    if n1 == 0 || n2 == 0 || n1 + n2 < 2 {
        return None;
    }
    let n1 = n1 as f64;
    let n2 = n2 as f64;
    let n = n1 + n2;
    let expected = 2.0 * n1 * n2 / n + 1.0;
    let var = 2.0 * n1 * n2 * (2.0 * n1 * n2 - n) / (n * n * (n - 1.0));
    if var <= 0.0 {
        return None;
    }
    let z = (runs as f64 - expected) / var.sqrt();
    Some(RunsTest {
        runs,
        expected,
        z,
        p_value: two_sided_normal_p(z),
    })
}

/// Two-sided normal p-value via the complementary error function
/// (Abramowitz–Stegun 7.1.26 rational approximation, |error| < 1.5e-7).
pub fn two_sided_normal_p(z: f64) -> f64 {
    let x = z.abs() / std::f64::consts::SQRT_2;
    // erfc(x) by A&S 7.1.26 on erf.
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erfc = poly * (-x * x).exp();
    erfc.clamp(0.0, 1.0)
}

/// Result of a χ² independence test on a 2×2 contingency table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Test {
    /// The χ² statistic (1 degree of freedom).
    pub statistic: f64,
    /// p-value from the χ²(1) distribution.
    pub p_value: f64,
}

/// χ² test of independence for the 2×2 table
/// `[[a, b], [c, d]]` (row = first variable, column = second).
/// Returns `None` if any marginal is zero (test undefined).
pub fn chi2_2x2(a: u64, b: u64, c: u64, d: u64) -> Option<Chi2Test> {
    let (af, bf, cf, df) = (a as f64, b as f64, c as f64, d as f64);
    let n = af + bf + cf + df;
    let r1 = af + bf;
    let r2 = cf + df;
    let c1 = af + cf;
    let c2 = bf + df;
    if r1 == 0.0 || r2 == 0.0 || c1 == 0.0 || c2 == 0.0 {
        return None;
    }
    let statistic = n * (af * df - bf * cf).powi(2) / (r1 * r2 * c1 * c2);
    // P(χ²(1) > x) = 1 - P(1/2, x/2).
    let p_value = 1.0 - reg_lower_gamma(0.5, statistic / 2.0);
    Some(Chi2Test { statistic, p_value })
}

/// Result of a Ljung–Box portmanteau test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LjungBoxTest {
    /// The Q statistic.
    pub statistic: f64,
    /// Degrees of freedom used (`lags − fitted_params`).
    pub dof: usize,
    /// p-value from the χ²(dof) distribution.
    pub p_value: f64,
}

/// Ljung–Box test for autocorrelation up to `lags`, with `fitted_params`
/// subtracted from the degrees of freedom when testing model residuals
/// (e.g. the order of a fitted AR model). Small p-values reject whiteness.
///
/// Returns `None` for degenerate inputs (too short, zero variance, or
/// `lags <= fitted_params`).
pub fn ljung_box(xs: &[f64], lags: usize, fitted_params: usize) -> Option<LjungBoxTest> {
    if lags == 0 || lags <= fitted_params || xs.len() <= lags + 1 {
        return None;
    }
    let acf = crate::acf::autocorrelation(xs, lags);
    if acf[1..].iter().all(|&c| c == 0.0) && acf[0] == 1.0 {
        // Constant series convention from autocorrelation(): no variance.
        let has_var = xs.windows(2).any(|w| w[0] != w[1]);
        if !has_var {
            return None;
        }
    }
    let n = xs.len() as f64;
    let q = n
        * (n + 2.0)
        * acf[1..=lags]
            .iter()
            .enumerate()
            .map(|(i, &r)| r * r / (n - (i + 1) as f64))
            .sum::<f64>();
    let dof = lags - fitted_params;
    let p_value = 1.0 - crate::special::reg_lower_gamma(dof as f64 / 2.0, q / 2.0);
    Some(LjungBoxTest {
        statistic: q,
        dof,
        p_value,
    })
}

/// Build the lag-1 contingency table of a binary sequence and test whether
/// `xs[n+1]` is independent of `xs[n]` — exactly the dependence the paper's
/// conditional loss probability `clp` measures.
pub fn lag1_independence(xs: &[bool]) -> Option<Chi2Test> {
    if xs.len() < 2 {
        return None;
    }
    let mut table = [[0u64; 2]; 2];
    for w in xs.windows(2) {
        table[w[0] as usize][w[1] as usize] += 1;
    }
    lag1_independence_from_counts(table[0][0], table[0][1], table[1][0], table[1][1])
}

/// [`lag1_independence`] from the streamed lag-1 transition counts
/// `n_xy` = number of adjacent pairs going state `x` → state `y`
/// (`0` = delivered, `1` = lost). An empty table (fewer than two samples
/// seen) is degenerate, exactly like a sequence shorter than 2.
pub fn lag1_independence_from_counts(n00: u64, n01: u64, n10: u64, n11: u64) -> Option<Chi2Test> {
    if n00 + n01 + n10 + n11 == 0 {
        return None;
    }
    chi2_2x2(n00, n01, n10, n11)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_bools(n: usize, p: f64, seed: u64) -> Vec<bool> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) < p
            })
            .collect()
    }

    #[test]
    fn runs_test_counts_runs() {
        // T T F F F T -> 3 runs.
        let xs = [true, true, false, false, false, true];
        let r = runs_test(&xs).unwrap();
        assert_eq!(r.runs, 3);
    }

    #[test]
    fn runs_test_accepts_random_sequence() {
        let xs = lcg_bools(5000, 0.5, 1);
        let r = runs_test(&xs).unwrap();
        assert!(r.z.abs() < 3.0, "z {}", r.z);
        assert!(r.p_value > 0.001, "p {}", r.p_value);
    }

    #[test]
    fn runs_test_rejects_clustered_sequence() {
        // Long alternating blocks: far fewer runs than expected.
        let xs: Vec<bool> = (0..5000).map(|i| (i / 100) % 2 == 0).collect();
        let r = runs_test(&xs).unwrap();
        assert!(r.z < -10.0, "z {}", r.z);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn runs_test_rejects_alternating_sequence() {
        // Strict alternation: far more runs than expected (z > 0).
        let xs: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        let r = runs_test(&xs).unwrap();
        assert_eq!(r.runs, 1000);
        assert!(r.z > 10.0);
    }

    #[test]
    fn runs_test_degenerate_is_none() {
        assert!(runs_test(&[true, true, true]).is_none());
        assert!(runs_test(&[false]).is_none());
        assert!(runs_test(&[]).is_none());
    }

    #[test]
    fn normal_p_reference_values() {
        assert!((two_sided_normal_p(0.0) - 1.0).abs() < 1e-6);
        // P(|Z| > 1.96) ≈ 0.05.
        assert!((two_sided_normal_p(1.96) - 0.05).abs() < 0.001);
        assert!(two_sided_normal_p(5.0) < 1e-5);
    }

    #[test]
    fn chi2_independent_table() {
        // Perfectly proportional table: statistic 0, p-value 1.
        let t = chi2_2x2(50, 50, 50, 50).unwrap();
        assert!(t.statistic < 1e-12);
        assert!(t.p_value > 0.999);
    }

    #[test]
    fn chi2_dependent_table() {
        // Strong diagonal: highly dependent.
        let t = chi2_2x2(90, 10, 10, 90).unwrap();
        assert!(t.statistic > 100.0);
        assert!(t.p_value < 1e-6);
    }

    #[test]
    fn chi2_zero_marginal_is_none() {
        assert!(chi2_2x2(0, 0, 5, 5).is_none());
        assert!(chi2_2x2(5, 0, 5, 0).is_none());
    }

    #[test]
    fn ljung_box_accepts_white_noise() {
        let mut state = 4u64;
        let xs: Vec<f64> = (0..20_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect();
        let t = ljung_box(&xs, 20, 0).expect("valid input");
        assert!(t.p_value > 0.001, "p {}", t.p_value);
        assert_eq!(t.dof, 20);
    }

    #[test]
    fn ljung_box_rejects_ar1_series() {
        let mut state = 8u64;
        let mut x = 0.0;
        let xs: Vec<f64> = (0..5_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let e = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                x = 0.7 * x + e;
                x
            })
            .collect();
        let t = ljung_box(&xs, 10, 0).expect("valid input");
        assert!(t.p_value < 1e-10, "p {}", t.p_value);
        assert!(t.statistic > 100.0);
    }

    #[test]
    fn ljung_box_residual_whiteness_after_ar_fit() {
        // Fit AR(1) to an AR(1) series: residuals must be white.
        let mut state = 16u64;
        let mut x = 0.0;
        let xs: Vec<f64> = (0..30_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let e = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                x = 0.6 * x + e;
                x
            })
            .collect();
        let model = crate::ar::ArModel::fit(&xs, 1);
        let residuals: Vec<f64> = (1..xs.len())
            .map(|t| xs[t] - model.predict_next(&xs[..t]))
            .collect();
        let t = ljung_box(&residuals, 15, 1).expect("valid input");
        assert!(
            t.p_value > 0.001,
            "AR(1) residuals should be white: p {}",
            t.p_value
        );
        assert_eq!(t.dof, 14);
    }

    #[test]
    fn ljung_box_degenerate_inputs() {
        assert!(ljung_box(&[1.0, 2.0], 5, 0).is_none());
        assert!(ljung_box(&[5.0; 100], 5, 0).is_none());
        assert!(ljung_box(&(0..100).map(|i| i as f64).collect::<Vec<_>>(), 3, 3).is_none());
    }

    #[test]
    fn lag1_accepts_iid_losses() {
        let xs = lcg_bools(20_000, 0.1, 9);
        let t = lag1_independence(&xs).unwrap();
        assert!(t.p_value > 0.001, "p {}", t.p_value);
    }

    #[test]
    fn lag1_rejects_bursty_losses() {
        // Markov chain with sticky loss state: P(loss | loss) = 0.6,
        // P(loss | ok) = 0.05.
        let mut state = 77u64;
        let mut cur = false;
        let xs: Vec<bool> = (0..20_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                cur = if cur { u < 0.6 } else { u < 0.05 };
                cur
            })
            .collect();
        let t = lag1_independence(&xs).unwrap();
        assert!(t.p_value < 1e-6, "p {}", t.p_value);
    }
}
