//! Fixed-bin histograms and empirical CDFs.
//!
//! The paper's Figures 8 and 9 are histograms of the probe interarrival
//! quantity `w_{n+1} - w_n + δ`; [`Histogram`] provides the binning, density
//! normalization and mode queries their reproduction needs.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equal-width bins. Out-of-range samples
/// are counted in underflow/overflow side gutters so that total mass is
/// conserved.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics unless `lo < hi`, both finite, and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Build from data with the given binning.
    pub fn from_data(data: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        let mut h = Histogram::new(lo, hi, bins);
        for &x in data {
            h.add(x);
        }
        h
    }

    /// Rebuild a histogram from raw parts, for deserialization.
    ///
    /// Total counterpart to [`Histogram::new`]: hostile inputs come back as
    /// `Err` instead of a panic, so wire decoders stay panic-free.
    pub fn from_parts(
        lo: f64,
        hi: f64,
        counts: Vec<u64>,
        underflow: u64,
        overflow: u64,
    ) -> Result<Self, &'static str> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err("histogram: bad range");
        }
        if counts.is_empty() {
            return Err("histogram: zero bins");
        }
        Ok(Histogram {
            lo,
            hi,
            counts,
            underflow,
            overflow,
        })
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Number of regular bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Range lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Range upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Add one sample. NaN is counted as underflow (mass conservation, but
    /// never binned).
    pub fn add(&mut self, x: f64) {
        match self.bin_of(x) {
            Some(i) => self.counts[i] += 1,
            None if x.is_nan() || x < self.lo => self.underflow += 1,
            None => self.overflow += 1,
        }
    }

    /// The bin a sample falls in: `Some(index)` for in-range samples, `None`
    /// for gutter samples (NaN, below `lo`, at or above `hi`). This is the
    /// exact binning [`Histogram::add`] applies, exposed so streaming
    /// estimators can reproduce it on other shapes (e.g. the 2-D phase-plot
    /// density grid) and stay bin-compatible with batch histograms.
    pub fn bin_of(&self, x: f64) -> Option<usize> {
        if x.is_nan() || x < self.lo || x >= self.hi {
            return None;
        }
        let i = ((x - self.lo) / self.bin_width()) as usize;
        // Float edge: x just below hi can index == bins.
        Some(i.min(self.counts.len() - 1))
    }

    /// True if `other` covers the same range with the same bin count, so the
    /// two histograms can be merged bin-for-bin.
    pub fn same_layout(&self, other: &Histogram) -> bool {
        self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len()
    }

    /// Fold `other` into `self`, bin-for-bin and gutter-for-gutter. Counts
    /// are integer sums, so merging is exact and associative — the property
    /// the streaming layer's `merge()` contract rests on.
    ///
    /// # Panics
    /// Panics if the layouts differ (see [`Histogram::same_layout`]).
    pub fn merge(&mut self, other: &Histogram) {
        assert!(self.same_layout(other), "histogram layouts differ");
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below `lo` (plus NaNs).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples offered, including gutters.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Center of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Probability-density estimate per bin: `count / (total * width)`.
    /// Empty histograms yield all zeros.
    pub fn density(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = 1.0 / (total as f64 * self.bin_width());
        self.counts.iter().map(|&c| c as f64 * norm).collect()
    }

    /// Fraction of in-range samples per bin (sums to 1 minus gutter share).
    pub fn frequencies(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Index and count of the fullest bin (`None` if all bins are empty).
    pub fn mode(&self) -> Option<(usize, u64)> {
        let (i, &c) = self.counts.iter().enumerate().max_by_key(|&(_, &c)| c)?;
        if c == 0 {
            None
        } else {
            Some((i, c))
        }
    }
}

/// Empirical CDF over a sample (sorted copy kept internally).
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from data; NaNs are dropped.
    pub fn new(data: &[f64]) -> Self {
        let mut sorted: Vec<f64> = data.iter().copied().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after filter"));
        Ecdf { sorted }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x): fraction of samples ≤ x.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method.
    ///
    /// # Panics
    /// Panics if empty or `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty sample");
        assert!((0.0..=1.0).contains(&q), "quantile level out of range");
        if q == 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Kolmogorov–Smirnov statistic against a reference CDF.
    pub fn ks_statistic<F: Fn(f64) -> f64>(&self, cdf: F) -> f64 {
        let n = self.sorted.len();
        if n == 0 {
            return 0.0;
        }
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = cdf(x);
            let lo = i as f64 / n as f64;
            let hi = (i + 1) as f64 / n as f64;
            d = d.max((f - lo).abs()).max((hi - f).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_is_conserved() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 2.5, 5.0, 9.999, 10.0, 42.0, f64::NAN] {
            h.add(x);
        }
        assert_eq!(h.total(), 8);
        assert_eq!(h.underflow(), 2); // -1 and NaN
        assert_eq!(h.overflow(), 2); // 10 and 42
        assert_eq!(h.counts().iter().sum::<u64>(), 4);
    }

    #[test]
    fn binning_is_exact() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.add(0.0);
        h.add(0.999);
        h.add(1.0);
        h.add(3.999);
        assert_eq!(h.counts(), &[2, 1, 0, 1]);
        assert!((h.center(0) - 0.5).abs() < 1e-12);
        assert!((h.center(3) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn density_integrates_to_in_range_fraction() {
        let data: Vec<f64> = (0..1000).map(|i| i as f64 / 100.0).collect(); // [0,10)
        let h = Histogram::from_data(&data, 0.0, 10.0, 20);
        let integral: f64 = h.density().iter().map(|d| d * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mode_finds_fullest_bin() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        for _ in 0..5 {
            h.add(1.5);
        }
        h.add(0.5);
        assert_eq!(h.mode(), Some((1, 5)));
        let empty = Histogram::new(0.0, 1.0, 2);
        assert_eq!(empty.mode(), None);
    }

    #[test]
    fn float_edge_near_hi_stays_in_last_bin() {
        let mut h = Histogram::new(0.0, 0.3, 3);
        h.add(0.3 - 1e-16); // rounds to exactly 0.3 / width in float
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.counts()[2], 1);
    }

    #[test]
    fn ecdf_eval_and_quantiles() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert!((e.eval(0.5) - 0.0).abs() < 1e-12);
        assert!((e.eval(1.0) - 0.25).abs() < 1e-12);
        assert!((e.eval(2.5) - 0.5).abs() < 1e-12);
        assert!((e.eval(99.0) - 1.0).abs() < 1e-12);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.median(), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
    }

    #[test]
    fn ecdf_drops_nan() {
        let e = Ecdf::new(&[1.0, f64::NAN, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn ks_statistic_zero_against_own_ecdf_limit() {
        // Against the true uniform CDF, a uniform grid sample has KS ~ 1/n.
        let n = 1000;
        let data: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let e = Ecdf::new(&data);
        let d = e.ks_statistic(|x| x.clamp(0.0, 1.0));
        assert!(d < 1.0 / n as f64 + 1e-9, "KS {d}");
    }

    #[test]
    fn ks_statistic_detects_mismatch() {
        let data: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let e = Ecdf::new(&data);
        // Against a point mass at 0.5 the distance is ~0.5.
        let d = e.ks_statistic(|x| if x < 0.5 { 0.0 } else { 1.0 });
        assert!(d > 0.4, "KS {d}");
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_range_panics() {
        Histogram::new(1.0, 0.0, 4);
    }
}
