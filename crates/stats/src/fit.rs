//! Distribution fitting: exponential, gamma, and constant-plus-gamma.
//!
//! Mukherjee's NSFNET study (the paper's ref \[19\]) found end-to-end delay
//! distributions "best modeled by a constant plus gamma distribution"; this
//! module provides that fit (plus its building blocks) so the same analysis
//! can be run on probe delay series.

use crate::special::{digamma, gamma_cdf, ln_gamma, trigamma};

/// A fitted exponential distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFit {
    /// Rate λ (1 / mean).
    pub rate: f64,
}

impl ExponentialFit {
    /// Maximum-likelihood fit: λ = 1 / sample mean.
    ///
    /// # Panics
    /// Panics if the sample is empty or has non-positive mean.
    pub fn mle(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "exponential fit needs data");
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        assert!(mean > 0.0, "exponential fit needs positive mean");
        ExponentialFit { rate: 1.0 / mean }
    }

    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }
}

/// A fitted gamma distribution (shape k, scale θ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaFit {
    /// Shape parameter k.
    pub shape: f64,
    /// Scale parameter θ.
    pub scale: f64,
}

impl GammaFit {
    /// Method-of-moments fit: k = mean²/var, θ = var/mean.
    ///
    /// # Panics
    /// Panics on empty data, non-positive mean, or zero variance.
    pub fn method_of_moments(data: &[f64]) -> Self {
        assert!(data.len() >= 2, "gamma MoM needs at least two points");
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        assert!(mean > 0.0, "gamma fit needs positive data mean");
        assert!(var > 0.0, "gamma fit needs positive variance");
        GammaFit {
            shape: mean * mean / var,
            scale: var / mean,
        }
    }

    /// Maximum-likelihood fit via Newton iteration on the shape equation
    /// `ln k − ψ(k) = ln(mean) − mean(ln x)`, starting from the standard
    /// closed-form approximation.
    ///
    /// ```
    /// use probenet_stats::GammaFit;
    /// let data = [0.8, 1.1, 2.3, 0.5, 1.7, 3.0, 1.2, 0.9];
    /// let fit = GammaFit::mle(&data);
    /// assert!(fit.shape > 0.0 && fit.scale > 0.0);
    /// // The fitted mean matches the sample mean exactly (MLE property).
    /// let sample_mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
    /// assert!((fit.mean() - sample_mean).abs() < 1e-9);
    /// ```
    ///
    /// # Panics
    /// Panics on empty data or any non-positive observation.
    pub fn mle(data: &[f64]) -> Self {
        assert!(!data.is_empty(), "gamma MLE needs data");
        assert!(
            data.iter().all(|&x| x > 0.0),
            "gamma MLE needs strictly positive data"
        );
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let mean_ln = data.iter().map(|x| x.ln()).sum::<f64>() / n;
        let s = mean.ln() - mean_ln;
        if s <= 0.0 {
            // Degenerate (all observations equal up to float error): a very
            // peaked gamma is the sensible limit.
            return GammaFit {
                shape: 1e6,
                scale: mean / 1e6,
            };
        }
        // Minka's closed-form start.
        let mut k = (3.0 - s + ((s - 3.0) * (s - 3.0) + 24.0 * s).sqrt()) / (12.0 * s);
        for _ in 0..50 {
            let f = k.ln() - digamma(k) - s;
            let fp = 1.0 / k - trigamma(k);
            let step = f / fp;
            let next = k - step;
            let next = if next <= 0.0 { k / 2.0 } else { next };
            if (next - k).abs() < 1e-12 * k {
                k = next;
                break;
            }
            k = next;
        }
        GammaFit {
            shape: k,
            scale: mean / k,
        }
    }

    /// Distribution mean kθ.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Distribution variance kθ².
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// CDF at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        gamma_cdf(self.shape, self.scale, x)
    }

    /// Log-likelihood of `data` under this fit.
    pub fn log_likelihood(&self, data: &[f64]) -> f64 {
        let k = self.shape;
        let th = self.scale;
        data.iter()
            .map(|&x| (k - 1.0) * x.ln() - x / th - ln_gamma(k) - k * th.ln())
            .sum()
    }
}

/// The "constant plus gamma" delay model of the paper's ref \[19\]: a fixed
/// offset (propagation and transmission) plus gamma-distributed queueing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftedGammaFit {
    /// The constant offset (estimated minimum fixed delay).
    pub shift: f64,
    /// The gamma component fitted to `data - shift`.
    pub gamma: GammaFit,
}

impl ShiftedGammaFit {
    /// Fit by setting the shift just below the sample minimum (a small
    /// margin keeps all shifted observations strictly positive) and
    /// ML-fitting the gamma to the residuals.
    ///
    /// # Panics
    /// Panics with fewer than two distinct observations.
    pub fn fit(data: &[f64]) -> Self {
        assert!(data.len() >= 2, "shifted gamma fit needs data");
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > min, "shifted gamma fit needs dispersion");
        let margin = (max - min) / (10.0 * data.len() as f64).max(100.0);
        let shift = min - margin;
        let shifted: Vec<f64> = data.iter().map(|&x| x - shift).collect();
        ShiftedGammaFit {
            shift,
            gamma: GammaFit::mle(&shifted),
        }
    }

    /// CDF of the shifted model at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.gamma.cdf(x - self.shift)
    }

    /// Model mean: shift + kθ.
    pub fn mean(&self) -> f64 {
        self.shift + self.gamma.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic gamma(k, θ) sample via inverse-CDF on a uniform grid —
    /// good enough to recover parameters without an RNG dependency.
    fn gamma_sample(shape: f64, scale: f64, n: usize) -> Vec<f64> {
        // Invert the CDF by bisection on a stratified uniform grid.
        (0..n)
            .map(|i| {
                let u = (i as f64 + 0.5) / n as f64;
                let mut lo = 0.0;
                let mut hi = scale * (shape + 10.0 * shape.sqrt() + 10.0);
                for _ in 0..80 {
                    let mid = 0.5 * (lo + hi);
                    if gamma_cdf(shape, scale, mid) < u {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                0.5 * (lo + hi)
            })
            .collect()
    }

    #[test]
    fn exponential_mle_recovers_rate() {
        let data = gamma_sample(1.0, 0.25, 4000); // exp(rate 4)
        let fit = ExponentialFit::mle(&data);
        assert!((fit.rate - 4.0).abs() < 0.1, "rate {}", fit.rate);
        assert!((fit.cdf(0.25) - (1.0 - (-1.0f64).exp())).abs() < 0.01);
        assert_eq!(fit.cdf(-1.0), 0.0);
    }

    #[test]
    fn gamma_mom_recovers_parameters() {
        let data = gamma_sample(3.0, 2.0, 4000);
        let fit = GammaFit::method_of_moments(&data);
        assert!((fit.shape - 3.0).abs() < 0.2, "shape {}", fit.shape);
        assert!((fit.scale - 2.0).abs() < 0.2, "scale {}", fit.scale);
    }

    #[test]
    fn gamma_mle_recovers_parameters() {
        for &(k, th) in &[(0.5, 1.0), (2.0, 3.0), (9.0, 0.5)] {
            let data = gamma_sample(k, th, 4000);
            let fit = GammaFit::mle(&data);
            assert!(
                (fit.shape - k).abs() / k < 0.05,
                "shape {} want {k}",
                fit.shape
            );
            assert!(
                (fit.scale - th).abs() / th < 0.05,
                "scale {} want {th}",
                fit.scale
            );
        }
    }

    #[test]
    fn gamma_mle_beats_or_matches_mom_likelihood() {
        let data = gamma_sample(2.5, 1.5, 2000);
        let mle = GammaFit::mle(&data);
        let mom = GammaFit::method_of_moments(&data);
        assert!(mle.log_likelihood(&data) >= mom.log_likelihood(&data) - 1e-6);
    }

    #[test]
    fn gamma_moments_formulae() {
        let g = GammaFit {
            shape: 4.0,
            scale: 0.5,
        };
        assert!((g.mean() - 2.0).abs() < 1e-12);
        assert!((g.variance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_gamma_recovers_shift_and_shape() {
        let base = gamma_sample(2.0, 5.0, 3000);
        let shifted: Vec<f64> = base.iter().map(|x| x + 140.0).collect();
        let fit = ShiftedGammaFit::fit(&shifted);
        assert!(
            (fit.shift - 140.0).abs() < 2.0,
            "shift {} want ~140",
            fit.shift
        );
        assert!((fit.mean() - 150.0).abs() < 1.5, "mean {}", fit.mean());
        // CDF is anchored at the shift.
        assert!(fit.cdf(140.0) < 1e-6);
        assert!(fit.cdf(1e6) > 0.999);
    }

    #[test]
    fn degenerate_equal_data_yields_peaked_gamma() {
        let fit = GammaFit::mle(&[3.0, 3.0, 3.0, 3.0]);
        assert!(fit.shape > 1e5);
        assert!((fit.mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn gamma_mle_rejects_nonpositive() {
        GammaFit::mle(&[1.0, 0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_exponential_panics() {
        ExponentialFit::mle(&[]);
    }
}
