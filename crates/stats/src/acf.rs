//! Autocovariance and autocorrelation of time series.
//!
//! Used to quantify how quickly the delay process decorrelates as the probe
//! interval grows (the paper's §5 observation that buffer states seen by
//! successive probes "become less and less correlated as δ increases").

/// Sample autocovariance at lags `0..=max_lag` (biased estimator, dividing
/// by n — the standard choice that keeps the sequence positive
/// semi-definite).
///
/// # Panics
/// Panics if the series is empty or `max_lag >= len`.
pub fn autocovariance(xs: &[f64], max_lag: usize) -> Vec<f64> {
    assert!(!xs.is_empty(), "autocovariance of empty series");
    assert!(max_lag < xs.len(), "max_lag must be < series length");
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    (0..=max_lag)
        .map(|k| {
            (0..n - k)
                .map(|i| (xs[i] - mean) * (xs[i + k] - mean))
                .sum::<f64>()
                / n as f64
        })
        .collect()
}

/// Sample autocorrelation at lags `0..=max_lag` (`acf[0] == 1`).
///
/// A constant series has zero variance; by convention its ACF is 1 at lag 0
/// and 0 elsewhere.
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let acov = autocovariance(xs, max_lag);
    let c0 = acov[0];
    if c0 == 0.0 {
        let mut out = vec![0.0; max_lag + 1];
        out[0] = 1.0;
        return out;
    }
    acov.iter().map(|c| c / c0).collect()
}

/// First lag at which |acf| drops below `threshold`, or `None` if it never
/// does within the computed range. A crude but useful decorrelation scale.
pub fn decorrelation_lag(acf: &[f64], threshold: f64) -> Option<usize> {
    acf.iter().position(|c| c.abs() < threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag0_is_variance_and_one() {
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0];
        let acov = autocovariance(&xs, 2);
        let mean = 3.0;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 5.0;
        assert!((acov[0] - var).abs() < 1e-12);
        let acf = autocorrelation(&xs, 2);
        assert!((acf[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alternating_series_has_negative_lag1() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let acf = autocorrelation(&xs, 3);
        assert!(acf[1] < -0.9, "lag-1 {}", acf[1]);
        assert!(acf[2] > 0.9, "lag-2 {}", acf[2]);
    }

    #[test]
    fn constant_series_convention() {
        let xs = [5.0; 10];
        let acf = autocorrelation(&xs, 4);
        assert_eq!(acf, vec![1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn iid_series_decorrelates_fast() {
        // Deterministic pseudo-random series via a simple LCG.
        let mut state = 12345u64;
        let xs: Vec<f64> = (0..5000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        let acf = autocorrelation(&xs, 10);
        for (k, c) in acf.iter().enumerate().skip(1) {
            assert!(c.abs() < 0.05, "lag {k} acf {c}");
        }
        assert_eq!(decorrelation_lag(&acf, 0.05), Some(1));
    }

    #[test]
    fn ar1_series_decays_geometrically() {
        // x_t = 0.8 x_{t-1} + e_t with deterministic noise.
        let mut state = 99u64;
        let mut x = 0.0;
        let xs: Vec<f64> = (0..20000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let e = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                x = 0.8 * x + e;
                x
            })
            .collect();
        let acf = autocorrelation(&xs, 5);
        for (k, &value) in acf.iter().enumerate().skip(1) {
            let want = 0.8f64.powi(k as i32);
            assert!(
                (value - want).abs() < 0.06,
                "lag {k}: acf {value} want {want}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "max_lag")]
    fn excessive_lag_panics() {
        autocovariance(&[1.0, 2.0], 2);
    }
}
