//! Multi-time-scale structure: variance-time analysis and the
//! aggregate-variance Hurst estimator.
//!
//! The paper's stated goal is "to study the structure of the Internet load
//! over different time scales" by sweeping the probe interval δ. The
//! variance-time plot examines the same question on one series: aggregate
//! the series over blocks of size `m` and watch how the variance of the
//! block means decays. For short-range-dependent processes it decays like
//! `m^{-1}`; slower decay (`m^{-(2-2H)}`, `H > 0.5`) signals long-range
//! dependence — the self-similarity that later measurement work (Leland et
//! al., 1994) made famous.

use crate::moments::ols;

/// One point of a variance-time plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariancePoint {
    /// Aggregation level `m` (block size, in samples).
    pub m: usize,
    /// Variance of the means of non-overlapping blocks of size `m`.
    pub variance: f64,
}

/// Variance of non-overlapping block means at one aggregation level.
///
/// Returns `None` when fewer than 2 full blocks exist.
pub fn aggregate_variance(xs: &[f64], m: usize) -> Option<f64> {
    assert!(m > 0, "aggregation level must be positive");
    let blocks = xs.len() / m;
    if blocks < 2 {
        return None;
    }
    let means: Vec<f64> = (0..blocks)
        .map(|b| xs[b * m..(b + 1) * m].iter().sum::<f64>() / m as f64)
        .collect();
    let grand = means.iter().sum::<f64>() / blocks as f64;
    Some(means.iter().map(|x| (x - grand) * (x - grand)).sum::<f64>() / (blocks - 1) as f64)
}

/// The variance-time plot over dyadic aggregation levels `1, 2, 4, …` up to
/// `xs.len() / 4` (so every point has at least 4 blocks).
pub fn variance_time_plot(xs: &[f64]) -> Vec<VariancePoint> {
    let mut out = Vec::new();
    let mut m = 1usize;
    while m <= xs.len() / 4 {
        if let Some(v) = aggregate_variance(xs, m) {
            if v > 0.0 {
                out.push(VariancePoint { m, variance: v });
            }
        }
        m *= 2;
    }
    out
}

/// Aggregate-variance Hurst estimate: fit `log var(m) = c + β log m` and
/// return `H = 1 + β/2`, clamped to `[0, 1]`.
///
/// Returns `None` with fewer than 3 usable aggregation levels.
pub fn hurst_aggregate_variance(xs: &[f64]) -> Option<f64> {
    let pts = variance_time_plot(xs);
    if pts.len() < 3 {
        return None;
    }
    let logm: Vec<f64> = pts.iter().map(|p| (p.m as f64).ln()).collect();
    let logv: Vec<f64> = pts.iter().map(|p| p.variance.ln()).collect();
    let (_, beta) = ols(&logm, &logv);
    Some((1.0 + beta / 2.0).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_series(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    #[test]
    fn aggregate_variance_basics() {
        let xs = [1.0, 1.0, 3.0, 3.0];
        // m = 2: block means 1 and 3, variance (sample) = 2.
        assert!((aggregate_variance(&xs, 2).unwrap() - 2.0).abs() < 1e-12);
        // m = 4: one block only.
        assert!(aggregate_variance(&xs, 4).is_none());
    }

    #[test]
    fn iid_variance_decays_like_one_over_m() {
        let xs = lcg_series(1 << 16, 3);
        let pts = variance_time_plot(&xs);
        // var(m) ≈ var(1)/m: check the ratio across 3 octaves.
        let v1 = pts[0].variance;
        for p in &pts {
            let want = v1 / p.m as f64;
            let ratio = p.variance / want;
            if p.m <= 256 {
                assert!((0.5..2.0).contains(&ratio), "m {}: ratio {ratio}", p.m);
            }
        }
    }

    #[test]
    fn iid_series_has_hurst_half() {
        let xs = lcg_series(1 << 16, 7);
        let h = hurst_aggregate_variance(&xs).unwrap();
        assert!((h - 0.5).abs() < 0.1, "H {h}");
    }

    #[test]
    fn random_walk_has_high_hurst() {
        // Cumulative sum of iid noise: strongly persistent increments when
        // viewed as a level series (H -> 1 for the level process).
        let noise = lcg_series(1 << 14, 9);
        let mut acc = 0.0;
        let walk: Vec<f64> = noise
            .iter()
            .map(|&e| {
                acc += e;
                acc
            })
            .collect();
        let h = hurst_aggregate_variance(&walk).unwrap();
        assert!(h > 0.85, "H {h}");
    }

    #[test]
    fn alternating_series_has_low_hurst() {
        // Strict alternation: block means cancel — anti-persistent.
        let xs: Vec<f64> = (0..4096)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let h = hurst_aggregate_variance(&xs);
        // Variance collapses to zero at m >= 2, so few usable points; either
        // no estimate or a very low one is acceptable.
        if let Some(h) = h {
            assert!(h < 0.3, "H {h}");
        }
    }

    #[test]
    fn short_series_yield_none() {
        assert!(hurst_aggregate_variance(&[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "aggregation level")]
    fn zero_m_panics() {
        aggregate_variance(&[1.0], 0);
    }
}
