//! Special functions needed by the distribution-fitting code: log-gamma,
//! digamma, trigamma, and the regularized incomplete gamma function.
//!
//! Implemented from scratch (Lanczos approximation and the classic series /
//! continued-fraction split for P(a, x)) so the workspace has no numeric
//! dependencies; accuracy is ~1e-10 over the ranges the fitters use, which
//! unit tests pin against reference values.

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
///
/// # Panics
/// Panics if `x <= 0` (the reflection branch is not needed here).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    let x = x - 1.0;
    let mut a = C[0];
    for (i, &c) in C.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Digamma ψ(x) = d/dx ln Γ(x), via upward recurrence + asymptotic series.
///
/// # Panics
/// Panics if `x <= 0`.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    // Shift x above 6 where the asymptotic series is accurate.
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))));
    result
}

/// Trigamma ψ′(x), via upward recurrence + asymptotic series.
///
/// # Panics
/// Panics if `x <= 0`.
pub fn trigamma(x: f64) -> f64 {
    assert!(x > 0.0, "trigamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 10.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result
        + inv * (1.0 + inv * (0.5 + inv * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0)))))
}

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a) ∈ [0, 1].
///
/// Series expansion for `x < a + 1`, Lentz continued fraction otherwise —
/// the standard numerically stable split.
///
/// # Panics
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma requires a > 0");
    assert!(x >= 0.0, "reg_lower_gamma requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    let ln_ga = ln_gamma(a);
    if x < a + 1.0 {
        // Series: P(a,x) = x^a e^-x / Γ(a) * Σ x^n Γ(a)/Γ(a+1+n)
        let mut term = 1.0 / a;
        let mut sum = term;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_ga).exp()
    } else {
        // Continued fraction for Q(a,x), modified Lentz.
        let tiny = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / tiny;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + an / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let delta = d * c;
            h *= delta;
            if (delta - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (a * x.ln() - x - ln_ga).exp() * h;
        1.0 - q
    }
}

/// CDF of the gamma distribution with `shape` k and `scale` θ at `x`.
pub fn gamma_cdf(shape: f64, scale: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    reg_lower_gamma(shape, x / scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, f) in facts.iter().enumerate() {
            let lg = ln_gamma((n + 1) as f64);
            assert!(
                (lg - f64::ln(*f)).abs() < TOL,
                "ln_gamma({}) = {lg}, want {}",
                n + 1,
                f64::ln(*f)
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        let want = 0.5 * std::f64::consts::PI.ln();
        assert!((ln_gamma(0.5) - want).abs() < TOL);
        // Γ(3/2) = sqrt(pi)/2
        let want = want - std::f64::consts::LN_2;
        assert!((ln_gamma(1.5) - want).abs() < TOL);
    }

    #[test]
    fn digamma_reference_values() {
        // ψ(1) = -γ (Euler–Mascheroni).
        let euler = 0.577_215_664_901_532_9;
        assert!((digamma(1.0) + euler).abs() < 1e-10);
        // ψ(2) = 1 - γ.
        assert!((digamma(2.0) - (1.0 - euler)).abs() < 1e-10);
        // ψ(0.5) = -γ - 2 ln 2.
        assert!((digamma(0.5) + euler + 2.0 * std::f64::consts::LN_2).abs() < 1e-10);
    }

    #[test]
    fn digamma_recurrence_property() {
        // ψ(x+1) = ψ(x) + 1/x
        for &x in &[0.3, 1.7, 4.2, 11.0] {
            assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10);
        }
    }

    #[test]
    fn trigamma_reference_values() {
        // ψ'(1) = π²/6.
        let want = std::f64::consts::PI.powi(2) / 6.0;
        assert!((trigamma(1.0) - want).abs() < 1e-9);
        // ψ'(x+1) = ψ'(x) - 1/x².
        for &x in &[0.4, 2.3, 7.0] {
            assert!((trigamma(x + 1.0) - trigamma(x) + 1.0 / (x * x)).abs() < 1e-10);
        }
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // For a = 1 the gamma distribution is exponential:
        // P(1, x) = 1 - e^-x.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            let want = 1.0 - f64::exp(-x);
            assert!((reg_lower_gamma(1.0, x) - want).abs() < 1e-12, "P(1,{x})");
        }
    }

    #[test]
    fn incomplete_gamma_erf_special_case() {
        // P(1/2, x) = erf(sqrt(x)); check against tabulated erf values.
        // erf(1) = 0.8427007929497149.
        assert!((reg_lower_gamma(0.5, 1.0) - 0.842_700_792_949_714_9).abs() < 1e-10);
        // erf(2) = 0.9953222650189527 -> P(1/2, 4).
        assert!((reg_lower_gamma(0.5, 4.0) - 0.995_322_265_018_952_7).abs() < 1e-10);
    }

    #[test]
    fn incomplete_gamma_is_monotone_cdf() {
        let mut prev = 0.0;
        for i in 0..200 {
            let x = i as f64 * 0.1;
            let v = reg_lower_gamma(3.0, x);
            assert!((0.0..=1.0).contains(&v));
            assert!(v >= prev - 1e-14);
            prev = v;
        }
        assert!(prev > 0.9999);
    }

    #[test]
    fn gamma_cdf_median_of_shape2() {
        // Median of gamma(k=2, θ=1) ≈ 1.67834699.
        let m = 1.678_346_99;
        assert!((gamma_cdf(2.0, 1.0, m) - 0.5).abs() < 1e-6);
        // Scale parameter scales x.
        assert!((gamma_cdf(2.0, 3.0, 3.0 * m) - 0.5).abs() < 1e-6);
    }
}
