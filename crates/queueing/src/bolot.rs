//! The paper's probing model (its Figure 3) and workload estimator (eq. 6).
//!
//! A constant delay `D` models the fixed round-trip component; one FIFO
//! server of rate μ models the bottleneck. Two streams feed the queue:
//! the **probe stream** (one `P`-bit packet every δ seconds) and the
//! **Internet stream**, lumped as `b_n` bits arriving `t_n` seconds after
//! probe `n` (all at once — "batch deterministic" arrivals, §6).
//!
//! Applying Lindley's recurrence twice per interval (the paper's eqs. 4–5):
//!
//! ```text
//! wb_n    = (w_n + P/μ − t_n)⁺                 // the batch's wait
//! w_{n+1} = (wb_n + b_n/μ − (δ − t_n))⁺        // the next probe's wait
//! ```
//!
//! and, whenever the buffer does not empty during the interval, the
//! composition collapses to `w_{n+1} = w_n + (P + b_n)/μ − δ`, which inverts
//! to the paper's **equation (6)**:
//!
//! ```text
//! b_n = μ (w_{n+1} − w_n + δ) − P
//! ```
//!
//! — the estimator that turns probe delays into a measurement of the
//! Internet workload.

/// One interval's Internet contribution: `bits` arriving `offset` seconds
/// after the probe of that interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Batch {
    /// Workload of the batch in bits (`b_n`).
    pub bits: f64,
    /// Arrival offset `t_n` within the interval, `0 ≤ offset ≤ δ`.
    pub offset: f64,
}

/// The paper's Figure-3 model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BolotModel {
    /// Bottleneck service rate μ in bits/s.
    pub mu_bps: f64,
    /// Probe packet size P in bits.
    pub probe_bits: f64,
    /// Probe interval δ in seconds.
    pub delta: f64,
    /// Fixed round-trip component D in seconds.
    pub fixed_rtt: f64,
}

impl BolotModel {
    /// A model instance.
    ///
    /// # Panics
    /// Panics unless all parameters are positive and `P/μ < δ` (otherwise
    /// the probe stream alone saturates the queue, which the paper rules
    /// out: "it is reasonable to keep δ < P/μ in all experiments" — sic,
    /// meaning the probe service time must stay below the interval).
    pub fn new(mu_bps: f64, probe_bits: f64, delta: f64, fixed_rtt: f64) -> Self {
        assert!(
            mu_bps > 0.0 && probe_bits > 0.0 && delta > 0.0,
            "positive parameters"
        );
        assert!(fixed_rtt >= 0.0, "fixed RTT cannot be negative");
        let m = BolotModel {
            mu_bps,
            probe_bits,
            delta,
            fixed_rtt,
        };
        assert!(
            m.probe_service() < delta,
            "probe stream alone saturates the bottleneck (P/mu >= delta)"
        );
        m
    }

    /// Probe service time `P/μ`.
    pub fn probe_service(&self) -> f64 {
        self.probe_bits / self.mu_bps
    }

    /// One interval of the two-stage Lindley recurrence (eqs. 4–5): from
    /// probe `n`'s wait and the interval's batch, the next probe's wait.
    ///
    /// # Panics
    /// Panics if the batch offset lies outside `[0, δ]` or bits < 0.
    pub fn step(&self, w_n: f64, batch: Batch) -> f64 {
        assert!(
            (0.0..=self.delta).contains(&batch.offset),
            "batch offset outside the probe interval"
        );
        assert!(batch.bits >= 0.0, "negative workload");
        let wb = (w_n + self.probe_service() - batch.offset).max(0.0);
        (wb + batch.bits / self.mu_bps - (self.delta - batch.offset)).max(0.0)
    }

    /// Waiting times `w_0..w_N` of `batches.len() + 1` probes, starting from
    /// an empty queue (`w_0 = 0`).
    pub fn waiting_times(&self, batches: &[Batch]) -> Vec<f64> {
        let mut w = Vec::with_capacity(batches.len() + 1);
        let mut cur = 0.0;
        w.push(cur);
        for &b in batches {
            cur = self.step(cur, b);
            w.push(cur);
        }
        w
    }

    /// Round-trip delay of a probe with waiting time `w`:
    /// `rtt = D + w + P/μ` (the paper's decomposition in §4).
    pub fn rtt(&self, w: f64) -> f64 {
        self.fixed_rtt + w + self.probe_service()
    }

    /// Map waiting times to round-trip delays.
    pub fn rtts(&self, waits: &[f64]) -> Vec<f64> {
        waits.iter().map(|&w| self.rtt(w)).collect()
    }

    /// The paper's equation (6): estimate each interval's Internet workload
    /// (bits) from consecutive waiting times. Values are exact whenever the
    /// buffer did not empty during the interval, and an **upper bound**
    /// otherwise (each `(·)⁺` in the recurrence only ever raises `w_{n+1}`,
    /// so the inversion can only overestimate; this is why the paper trusts
    /// eq. 6 only "if δ is sufficiently small").
    pub fn estimate_workload(&self, waits: &[f64]) -> Vec<f64> {
        waits
            .windows(2)
            .map(|w| self.mu_bps * (w[1] - w[0] + self.delta) - self.probe_bits)
            .collect()
    }

    /// Equation (6) applied to round-trip delays directly: since
    /// `rtt = D + w + P/μ`, the difference `rtt_{n+1} − rtt_n` equals
    /// `w_{n+1} − w_n` and the same inversion applies.
    pub fn estimate_workload_from_rtts(&self, rtts: &[f64]) -> Vec<f64> {
        rtts.windows(2)
            .map(|r| self.mu_bps * (r[1] - r[0] + self.delta) - self.probe_bits)
            .collect()
    }

    /// The probe-compression signature: consecutive probes draining
    /// back-to-back return `P/μ − δ` apart, i.e.
    /// `rtt_{n+1} − rtt_n = P/μ − δ` (the paper's eq. 3). Returns that
    /// constant.
    pub fn compression_slope_offset(&self) -> f64 {
        self.probe_service() - self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lindley::waiting_times_from_arrivals;
    use proptest::prelude::*;

    /// The paper's setting: 128 kb/s bottleneck, 72-byte probes (the P the
    /// paper uses in its eq. 6 arithmetic), δ = 20 ms.
    fn paper_model() -> BolotModel {
        BolotModel::new(128_000.0, 72.0 * 8.0, 0.020, 0.140)
    }

    #[test]
    fn no_internet_traffic_keeps_queue_empty() {
        let m = paper_model();
        let batches = vec![
            Batch {
                bits: 0.0,
                offset: 0.01
            };
            100
        ];
        let w = m.waiting_times(&batches);
        assert!(w.iter().all(|&x| x == 0.0));
        // RTT is then exactly D + P/μ.
        assert!((m.rtt(0.0) - (0.140 + 0.0045)).abs() < 1e-12);
    }

    #[test]
    fn ftp_batch_delays_next_probe() {
        let m = paper_model();
        // One 512-byte FTP packet (4096 bits -> 32 ms of work) lands right
        // after probe 0 clears (offset 5 ms > P/mu = 4.5 ms).
        let w1 = m.step(
            0.0,
            Batch {
                bits: 4096.0,
                offset: 0.005,
            },
        );
        // Next probe arrives 15 ms after the batch; 32 ms of work remain
        // minus those 15 ms: w1 = 17 ms.
        assert!((w1 - 0.017).abs() < 1e-12, "w1 {w1}");
    }

    #[test]
    fn equation6_is_exact_while_buffer_busy() {
        let m = paper_model();
        // Offered Internet load just above μδ − P keeps the buffer busy.
        let bits = [3000.0, 2600.0, 2700.0, 3100.0, 2900.0, 2800.0];
        let batches: Vec<Batch> = bits
            .iter()
            .map(|&b| Batch {
                bits: b,
                offset: 0.004,
            })
            .collect();
        // Warm the queue up first so it never empties during the window.
        let mut all = vec![
            Batch {
                bits: 8000.0,
                offset: 0.004
            };
            3
        ];
        all.extend_from_slice(&batches);
        let w = m.waiting_times(&all);
        assert!(
            w[3..].iter().all(|&x| x > 0.0),
            "buffer must stay busy: {w:?}"
        );
        let est = m.estimate_workload(&w[3..]);
        for (e, b) in est.iter().zip(&bits) {
            assert!((e - b).abs() < 1e-9, "estimated {e} true {b}");
        }
    }

    #[test]
    fn equation6_from_rtts_matches_from_waits() {
        let m = paper_model();
        let batches: Vec<Batch> = (0..50)
            .map(|i| Batch {
                bits: (i % 5) as f64 * 1500.0,
                offset: 0.003,
            })
            .collect();
        let w = m.waiting_times(&batches);
        let rtts = m.rtts(&w);
        let a = m.estimate_workload(&w);
        let b = m.estimate_workload_from_rtts(&rtts);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn compression_slope_matches_paper_figure2() {
        // δ = 50 ms, P = 32 bytes at 128 kb/s: the phase-plot line
        // intersects the x-axis at δ − P/μ = 48 ms (the paper's reading).
        let m = BolotModel::new(128_000.0, 32.0 * 8.0, 0.050, 0.140);
        assert!((m.compression_slope_offset() + 0.048).abs() < 1e-12);
    }

    #[test]
    fn two_stage_recurrence_matches_general_lindley() {
        // The closed recurrence must agree with a plain Lindley queue fed
        // by the merged arrival sequence (probe at nδ, batch at nδ + t_n).
        let m = paper_model();
        let batches: Vec<Batch> = (0..40)
            .map(|i| Batch {
                bits: ((i * 37) % 7) as f64 * 1200.0,
                offset: 0.002 + 0.0005 * (i % 20) as f64,
            })
            .collect();
        let w_model = m.waiting_times(&batches);

        let mut arrivals = Vec::new();
        let mut services = Vec::new();
        let mut probe_idx = Vec::new();
        for n in 0..=batches.len() {
            probe_idx.push(arrivals.len());
            arrivals.push(n as f64 * m.delta);
            services.push(m.probe_service());
            if n < batches.len() {
                arrivals.push(n as f64 * m.delta + batches[n].offset);
                services.push(batches[n].bits / m.mu_bps);
            }
        }
        let w_all = waiting_times_from_arrivals(&arrivals, &services);
        for (n, &pi) in probe_idx.iter().enumerate() {
            assert!(
                (w_all[pi] - w_model[n]).abs() < 1e-9,
                "probe {n}: general {} vs model {}",
                w_all[pi],
                w_model[n]
            );
        }
    }

    #[test]
    #[should_panic(expected = "saturates")]
    fn saturating_probe_rate_panics() {
        // P/μ = 4.5 ms but δ = 4 ms.
        BolotModel::new(128_000.0, 72.0 * 8.0, 0.004, 0.140);
    }

    #[test]
    #[should_panic(expected = "offset outside")]
    fn bad_offset_panics() {
        let m = paper_model();
        m.step(
            0.0,
            Batch {
                bits: 0.0,
                offset: 0.5,
            },
        );
    }

    proptest! {
        #[test]
        fn prop_waits_nonnegative_and_eq6_lower_bounds(
            bits in proptest::collection::vec(0.0f64..20_000.0, 1..100),
            offs in proptest::collection::vec(0.0f64..1.0, 1..100),
        ) {
            let m = paper_model();
            let n = bits.len().min(offs.len());
            let batches: Vec<Batch> = (0..n)
                .map(|i| Batch { bits: bits[i], offset: offs[i] * m.delta })
                .collect();
            let w = m.waiting_times(&batches);
            prop_assert!(w.iter().all(|&x| x >= 0.0));
            // eq. (6) never underestimates: b̂_n ≥ b_n always (exact when
            // the buffer stays busy; each (·)⁺ only raises w_{n+1}).
            let est = m.estimate_workload(&w);
            for (e, b) in est.iter().zip(batches.iter().map(|b| b.bits)) {
                prop_assert!(*e >= b - 1e-6, "estimate {e} below true {b}");
            }
        }

        #[test]
        fn prop_two_stage_equals_general_lindley(
            bits in proptest::collection::vec(0.0f64..15_000.0, 1..60),
            offs in proptest::collection::vec(0.0f64..1.0, 1..60),
        ) {
            let m = paper_model();
            let n = bits.len().min(offs.len());
            let batches: Vec<Batch> = (0..n)
                .map(|i| Batch { bits: bits[i], offset: offs[i] * m.delta })
                .collect();
            let w_model = m.waiting_times(&batches);
            let mut arrivals = Vec::new();
            let mut services = Vec::new();
            let mut probe_idx = Vec::new();
            for k in 0..=batches.len() {
                probe_idx.push(arrivals.len());
                arrivals.push(k as f64 * m.delta);
                services.push(m.probe_service());
                if k < batches.len() {
                    arrivals.push(k as f64 * m.delta + batches[k].offset);
                    services.push(batches[k].bits / m.mu_bps);
                }
            }
            // Merged arrivals can be locally out of order when offset ≈ δ;
            // the model assumes batch-before-next-probe, so sort stably.
            let mut order: Vec<usize> = (0..arrivals.len()).collect();
            order.sort_by(|&a, &b| arrivals[a].partial_cmp(&arrivals[b])
                .expect("finite").then(a.cmp(&b)));
            let sorted_arr: Vec<f64> = order.iter().map(|&i| arrivals[i]).collect();
            let sorted_srv: Vec<f64> = order.iter().map(|&i| services[i]).collect();
            let w_all = waiting_times_from_arrivals(&sorted_arr, &sorted_srv);
            for (k, &pi) in probe_idx.iter().enumerate() {
                let pos = order.iter().position(|&i| i == pi).expect("present");
                prop_assert!((w_all[pos] - w_model[k]).abs() < 1e-9,
                    "probe {k}: {} vs {}", w_all[pos], w_model[k]);
            }
        }
    }
}
