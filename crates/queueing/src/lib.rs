//! # probenet-queueing
//!
//! Queueing theory for probe-delay analysis:
//!
//! * [`lindley`] — Lindley's recurrence (`w_{n+1} = (w_n + y_n − x_n)⁺`),
//!   the exact waiting-time engine behind the paper's §4 analysis, plus a
//!   finite-buffer variant.
//! * [`bolot`] — the paper's Figure-3 model: a fixed delay plus one FIFO
//!   bottleneck fed by periodic probes and batch-deterministic Internet
//!   traffic, with the equation-(6) workload estimator.
//! * [`analytic`] — closed-form M/M/1, M/G/1 (Pollaczek–Khinchine) and
//!   M/M/1/K results used as oracles in tests across the workspace.
//!
//! ```
//! use probenet_queueing::{BolotModel, Batch};
//!
//! // 128 kb/s bottleneck, 72-byte probes every 20 ms, D = 140 ms.
//! let model = BolotModel::new(128_000.0, 72.0 * 8.0, 0.020, 0.140);
//! // One 512-byte FTP packet arrives 5 ms into each interval.
//! let batches = vec![Batch { bits: 4096.0, offset: 0.005 }; 10];
//! let waits = model.waiting_times(&batches);
//! // 32 ms of work arrive per 20 ms interval: the queue builds up.
//! assert!(waits.last().unwrap() > waits.first().unwrap());
//! ```

pub mod analytic;
pub mod batch_model;
pub mod bolot;
pub mod lindley;

pub use analytic::{
    md1_mean_wait, mg1_mean_wait, mm1_mean_in_system, mm1_mean_wait, mm1k_blocking,
    mm1k_utilization,
};
pub use batch_model::{BatchModelSolution, BatchModelSolver, BatchSizeDist};
pub use bolot::{Batch, BolotModel};
pub use lindley::{
    finite_queue, lindley_step, plus, waiting_times, waiting_times_from_arrivals, Outcome,
};
