//! Numerical analysis of the paper's §6 model — the "currently analyzing"
//! future work, implemented.
//!
//! The model: the probe arrival process is deterministic (period δ) and the
//! Internet arrival process is **batch deterministic** — one batch of `B_n`
//! bits per interval, at a fixed offset `t` after the probe, with a general
//! batch-size distribution. The probe waiting time then evolves as the
//! Markov chain
//!
//! ```text
//! w_{n+1} = ((w_n + P/μ − t)⁺ + B_n/μ − (δ − t))⁺
//! ```
//!
//! [`BatchModelSolver`] discretizes the waiting time and iterates the
//! transition law to the stationary distribution, from which it derives the
//! stationary distribution of the **return interarrival** `g = w' − w + δ`
//! — the quantity of the paper's Figures 8–9. The paper reports that this
//! analysis "brings out the probe compression phenomenon": the solver's
//! `g` distribution indeed shows the compression mass at `P/μ` (and, with
//! a finite buffer, the random-loss behaviour at high intensity).

use crate::bolot::BolotModel;

/// A discrete batch-size distribution: `(probability, bits)` pairs.
///
/// Probabilities are normalized on construction.
#[derive(Debug, Clone)]
pub struct BatchSizeDist {
    parts: Vec<(f64, f64)>,
}

impl BatchSizeDist {
    /// Build from `(weight, bits)` pairs.
    ///
    /// # Panics
    /// Panics if empty, if any weight or size is negative, or if the total
    /// weight is zero.
    pub fn new(parts: Vec<(f64, f64)>) -> Self {
        assert!(!parts.is_empty(), "empty batch distribution");
        assert!(
            parts.iter().all(|&(w, b)| w >= 0.0 && b >= 0.0),
            "negative weight or size"
        );
        let total: f64 = parts.iter().map(|&(w, _)| w).sum();
        assert!(total > 0.0, "zero total weight");
        BatchSizeDist {
            parts: parts.into_iter().map(|(w, b)| (w / total, b)).collect(),
        }
    }

    /// The paper's hypothesis: with probability `p_k` the interval carries
    /// `k` FTP packets of `packet_bits` each (`k = 0..probs.len()-1`).
    pub fn ftp_batches(packet_bits: f64, probs: &[f64]) -> Self {
        BatchSizeDist::new(
            probs
                .iter()
                .enumerate()
                .map(|(k, &p)| (p, k as f64 * packet_bits))
                .collect(),
        )
    }

    /// Mean batch size in bits.
    pub fn mean_bits(&self) -> f64 {
        self.parts.iter().map(|&(w, b)| w * b).sum()
    }

    /// The `(probability, bits)` support.
    pub fn parts(&self) -> &[(f64, f64)] {
        &self.parts
    }
}

/// Stationary solution of the §6 model.
#[derive(Debug, Clone)]
pub struct BatchModelSolution {
    /// Discretization step in seconds.
    pub step: f64,
    /// Stationary waiting-time pmf: `wait_pmf[i]` = P(w ∈ bin i).
    pub wait_pmf: Vec<f64>,
    /// Stationary return-interarrival pmf over the same grid:
    /// `g_pmf[i]` = P(g ∈ bin i), where `g = w' − w + δ ≥ 0`.
    pub g_pmf: Vec<f64>,
    /// Iterations until convergence.
    pub iterations: usize,
}

impl BatchModelSolution {
    /// Mean stationary waiting time (seconds).
    pub fn mean_wait(&self) -> f64 {
        self.wait_pmf
            .iter()
            .enumerate()
            .map(|(i, &p)| p * i as f64 * self.step)
            .sum()
    }

    /// P(w = 0): the probability a probe finds the bottleneck idle.
    pub fn idle_probability(&self) -> f64 {
        self.wait_pmf.first().copied().unwrap_or(0.0)
    }

    /// Probability mass of `g` within `±tol` seconds of `x`.
    pub fn g_mass_near(&self, x: f64, tol: f64) -> f64 {
        self.g_pmf
            .iter()
            .enumerate()
            .filter(|&(i, _)| ((i as f64 * self.step) - x).abs() <= tol)
            .map(|(_, &p)| p)
            .sum()
    }
}

/// Solver configuration and state.
#[derive(Debug, Clone)]
pub struct BatchModelSolver {
    /// The deterministic part of the model (μ, P, δ, D).
    pub model: BolotModel,
    /// Batch arrival offset `t` within the interval (seconds).
    pub offset: f64,
    /// Batch-size distribution.
    pub batches: BatchSizeDist,
    /// Waiting-time discretization step (seconds).
    pub step: f64,
    /// Maximum waiting time represented (seconds) — an implicit buffer
    /// bound; mass pushed beyond it accumulates in the last bin.
    pub max_wait: f64,
}

impl BatchModelSolver {
    /// A solver with step 0.5 ms and a 2-second waiting cap.
    ///
    /// # Panics
    /// Panics if `offset` lies outside `[0, δ]`.
    pub fn new(model: BolotModel, offset: f64, batches: BatchSizeDist) -> Self {
        assert!(
            (0.0..=model.delta).contains(&offset),
            "batch offset outside the interval"
        );
        BatchModelSolver {
            model,
            offset,
            batches,
            step: 0.0005,
            max_wait: 2.0,
        }
    }

    /// Offered Internet load as a fraction of μ.
    pub fn intensity(&self) -> f64 {
        self.batches.mean_bits() / (self.model.mu_bps * self.model.delta)
    }

    fn bins(&self) -> usize {
        (self.max_wait / self.step).ceil() as usize + 1
    }

    /// One application of the transition law to a waiting-time pmf.
    fn evolve(&self, pmf: &[f64]) -> Vec<f64> {
        let n = self.bins();
        let mut next = vec![0.0; n];
        for (i, &p) in pmf.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let w = i as f64 * self.step;
            for &(q, bits) in self.batches.parts() {
                let w2 = self.model.step(
                    w,
                    crate::bolot::Batch {
                        bits,
                        offset: self.offset,
                    },
                );
                let j = ((w2 / self.step).round() as usize).min(n - 1);
                next[j] += p * q;
            }
        }
        next
    }

    /// Iterate to the stationary distribution (L1 tolerance `1e-10`, at
    /// most `max_iters` sweeps), then derive the `g` distribution.
    pub fn solve(&self, max_iters: usize) -> BatchModelSolution {
        let n = self.bins();
        let mut pmf = vec![0.0; n];
        pmf[0] = 1.0; // start empty
        let mut iterations = 0;
        for it in 0..max_iters {
            let next = self.evolve(&pmf);
            let delta: f64 = next.iter().zip(&pmf).map(|(a, b)| (a - b).abs()).sum();
            pmf = next;
            iterations = it + 1;
            if delta < 1e-10 {
                break;
            }
        }

        // g = w' − w + δ: joint over (w, batch) since w' is a deterministic
        // function of both.
        let mut g_pmf = vec![0.0; n];
        for (i, &p) in pmf.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let w = i as f64 * self.step;
            for &(q, bits) in self.batches.parts() {
                let w2 = self.model.step(
                    w,
                    crate::bolot::Batch {
                        bits,
                        offset: self.offset,
                    },
                );
                let g = w2 - w + self.model.delta;
                let j = ((g / self.step).round() as usize).min(n - 1);
                g_pmf[j] += p * q;
            }
        }
        BatchModelSolution {
            step: self.step,
            wait_pmf: pmf,
            g_pmf,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model(delta: f64) -> BolotModel {
        BolotModel::new(128_000.0, 72.0 * 8.0, delta, 0.140)
    }

    /// δ = 20 ms with one FTP packet (4096 bits) in 20% of intervals.
    fn light_solver() -> BatchModelSolver {
        BatchModelSolver::new(
            paper_model(0.020),
            0.005,
            BatchSizeDist::ftp_batches(4096.0, &[0.8, 0.2]),
        )
    }

    #[test]
    fn batch_dist_normalizes() {
        let d = BatchSizeDist::new(vec![(2.0, 100.0), (2.0, 300.0)]);
        assert!((d.mean_bits() - 200.0).abs() < 1e-12);
        let total: f64 = d.parts().iter().map(|&(w, _)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ftp_batches_constructor() {
        let d = BatchSizeDist::ftp_batches(4096.0, &[0.5, 0.3, 0.2]);
        // mean = 0.3*4096 + 0.2*8192
        assert!((d.mean_bits() - (0.3 * 4096.0 + 0.2 * 8192.0)).abs() < 1e-9);
    }

    #[test]
    fn zero_traffic_stays_idle() {
        let solver = BatchModelSolver::new(
            paper_model(0.020),
            0.005,
            BatchSizeDist::new(vec![(1.0, 0.0)]),
        );
        let sol = solver.solve(100);
        assert!((sol.idle_probability() - 1.0).abs() < 1e-12);
        assert!(sol.mean_wait() < 1e-12);
        // All g mass at δ.
        assert!((sol.g_mass_near(0.020, 1e-6) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stationary_pmf_is_a_distribution() {
        let sol = light_solver().solve(2000);
        let mass: f64 = sol.wait_pmf.iter().sum();
        assert!((mass - 1.0).abs() < 1e-9, "wait mass {mass}");
        let gmass: f64 = sol.g_pmf.iter().sum();
        assert!((gmass - 1.0).abs() < 1e-9, "g mass {gmass}");
        assert!(sol.wait_pmf.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn compression_mass_appears_at_p_over_mu() {
        // The paper: the analytic model "brings out the probe compression
        // phenomenon" — stationary g mass at P/μ = 4.5 ms.
        let sol = light_solver().solve(2000);
        let at_compression = sol.g_mass_near(0.0045, 0.001);
        assert!(at_compression > 0.02, "compression mass {at_compression}");
        // And an undisturbed mass at δ.
        let at_delta = sol.g_mass_near(0.020, 0.001);
        assert!(at_delta > 0.3, "undisturbed mass {at_delta}");
        // And a bulk peak at (B + P)/μ = 36.5 ms.
        let at_bulk = sol.g_mass_near(0.0365, 0.001);
        assert!(at_bulk > 0.05, "bulk mass {at_bulk}");
    }

    #[test]
    fn heavier_traffic_raises_mean_wait() {
        let light = light_solver().solve(2000);
        let heavy = BatchModelSolver::new(
            paper_model(0.020),
            0.005,
            BatchSizeDist::ftp_batches(4096.0, &[0.5, 0.35, 0.15]),
        )
        .solve(2000);
        assert!(
            heavy.mean_wait() > light.mean_wait(),
            "heavy {} vs light {}",
            heavy.mean_wait(),
            light.mean_wait()
        );
    }

    #[test]
    fn solver_matches_monte_carlo_of_the_recurrence() {
        // Validate the numerical stationary distribution against a long
        // deterministic-pattern simulation of the same recurrence.
        let model = paper_model(0.020);
        let solver = BatchModelSolver::new(
            model,
            0.005,
            BatchSizeDist::ftp_batches(4096.0, &[0.75, 0.25]),
        );
        let sol = solver.solve(2000);

        // Monte Carlo with an LCG matching the 25% batch probability.
        let mut state = 77u64;
        let mut w = 0.0f64;
        let mut waits = Vec::with_capacity(200_000);
        for _ in 0..200_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let bits = if u < 0.25 { 4096.0 } else { 0.0 };
            w = model.step(
                w,
                crate::bolot::Batch {
                    bits,
                    offset: 0.005,
                },
            );
            waits.push(w);
        }
        let mc_mean = waits.iter().sum::<f64>() / waits.len() as f64;
        let an_mean = sol.mean_wait();
        assert!(
            (mc_mean - an_mean).abs() < 0.002,
            "monte carlo {mc_mean} vs solver {an_mean}"
        );
        let mc_idle = waits.iter().filter(|&&x| x == 0.0).count() as f64 / waits.len() as f64;
        assert!(
            (mc_idle - sol.idle_probability()).abs() < 0.02,
            "idle: mc {mc_idle} vs solver {}",
            sol.idle_probability()
        );
    }

    #[test]
    fn intensity_formula() {
        let s = light_solver();
        // mean bits = 0.2 * 4096; μδ = 2560.
        assert!((s.intensity() - (0.2 * 4096.0) / 2560.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "offset outside")]
    fn bad_offset_panics() {
        BatchModelSolver::new(
            paper_model(0.020),
            0.5,
            BatchSizeDist::new(vec![(1.0, 0.0)]),
        );
    }
}
