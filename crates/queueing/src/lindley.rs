//! Lindley's recurrence for single-server FIFO queues.
//!
//! The paper's exact analysis (§4, its Figure 7) rests on Lindley's
//! recurrence: with `w_n` the waiting time of customer `n`, `y_n` its
//! service time and `x_n` the interarrival gap to customer `n + 1`,
//!
//! ```text
//! w_{n+1} = (w_n + y_n − x_n)⁺
//! ```
//!
//! This module provides the recurrence for arbitrary arrival/service
//! sequences, a finite-buffer variant, and helpers to derive waiting times
//! from absolute arrival instants.

/// `max(x, 0)` — the paper's `x⁺` notation.
#[inline]
pub fn plus(x: f64) -> f64 {
    x.max(0.0)
}

/// One step of Lindley's recurrence.
#[inline]
pub fn lindley_step(w: f64, service: f64, interarrival: f64) -> f64 {
    plus(w + service - interarrival)
}

/// Waiting times of every customer given interarrival gaps and service
/// times: `interarrivals[n]` separates customers `n` and `n+1`;
/// `services[n]` is customer `n`'s service time. Customer 0 waits
/// `initial_wait` (usually 0).
///
/// Returns one waiting time per customer (`services.len()` of them).
///
/// ```
/// use probenet_queueing::waiting_times;
/// // Service takes 2 time units, arrivals 1 apart: each customer waits
/// // one more than the last (the paper's Figure-7 situation).
/// let w = waiting_times(&[1.0, 1.0, 1.0], &[2.0; 4], 0.0);
/// assert_eq!(w, vec![0.0, 1.0, 2.0, 3.0]);
/// ```
///
/// # Panics
/// Panics unless `interarrivals.len() + 1 == services.len()`, or both empty.
pub fn waiting_times(interarrivals: &[f64], services: &[f64], initial_wait: f64) -> Vec<f64> {
    if services.is_empty() {
        assert!(interarrivals.is_empty(), "gaps without customers");
        return Vec::new();
    }
    assert_eq!(
        interarrivals.len() + 1,
        services.len(),
        "need one interarrival gap between consecutive customers"
    );
    let mut w = Vec::with_capacity(services.len());
    let mut cur = plus(initial_wait);
    w.push(cur);
    for (n, &x) in interarrivals.iter().enumerate() {
        cur = lindley_step(cur, services[n], x);
        w.push(cur);
    }
    w
}

/// Waiting times from absolute arrival instants (must be non-decreasing)
/// and service times.
///
/// # Panics
/// Panics if lengths differ, arrivals decrease, or input is empty with
/// non-empty services.
pub fn waiting_times_from_arrivals(arrivals: &[f64], services: &[f64]) -> Vec<f64> {
    assert_eq!(arrivals.len(), services.len(), "one service per arrival");
    if arrivals.is_empty() {
        return Vec::new();
    }
    let gaps: Vec<f64> = arrivals
        .windows(2)
        .map(|w| {
            let g = w[1] - w[0];
            assert!(g >= 0.0, "arrival times must be non-decreasing");
            g
        })
        .collect();
    waiting_times(&gaps, services, 0.0)
}

/// What happened to each customer of a finite-buffer queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Customer entered and waited this long before service.
    Served {
        /// Waiting time (excluding service).
        wait: f64,
    },
    /// Customer found `capacity` others in the system and was lost.
    Blocked,
}

/// Finite-buffer (drop-on-full) FIFO queue fed by absolute arrival instants:
/// a customer arriving when `capacity` customers are already in the system
/// (queued + in service) is lost. Exact event bookkeeping via departure
/// times.
///
/// # Panics
/// Panics if lengths differ, arrivals decrease, or `capacity == 0`.
pub fn finite_queue(arrivals: &[f64], services: &[f64], capacity: usize) -> Vec<Outcome> {
    assert_eq!(arrivals.len(), services.len(), "one service per arrival");
    assert!(capacity > 0, "capacity must be positive");
    let mut departures: Vec<f64> = Vec::new(); // departure times of admitted customers
    let mut out = Vec::with_capacity(arrivals.len());
    let mut last_arrival = f64::NEG_INFINITY;
    for (i, &t) in arrivals.iter().enumerate() {
        assert!(t >= last_arrival, "arrival times must be non-decreasing");
        last_arrival = t;
        // Number still in system: departures after t.
        let in_system = departures.iter().rev().take_while(|&&d| d > t).count();
        if in_system >= capacity {
            out.push(Outcome::Blocked);
            continue;
        }
        let start = if let Some(&last) = departures.last() {
            last.max(t)
        } else {
            t
        };
        let depart = start + services[i];
        departures.push(depart);
        out.push(Outcome::Served { wait: start - t });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_queue_stays_empty() {
        // Service 1, gaps 2: every customer finds an empty queue.
        let w = waiting_times(&[2.0; 9], &[1.0; 10], 0.0);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn overloaded_queue_grows_linearly() {
        // Service 2, gaps 1: each wait grows by exactly 1.
        let w = waiting_times(&[1.0; 5], &[2.0; 6], 0.0);
        assert_eq!(w, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn waiting_clears_after_idle_gap() {
        // A burst, then a long gap: wait resets to zero.
        let gaps = [0.0, 0.0, 100.0];
        let services = [1.0, 1.0, 1.0, 1.0];
        let w = waiting_times(&gaps, &services, 0.0);
        assert_eq!(w, vec![0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    fn initial_wait_propagates() {
        let w = waiting_times(&[1.0], &[1.0, 1.0], 5.0);
        assert_eq!(w, vec![5.0, 5.0]);
    }

    #[test]
    fn from_arrivals_matches_gap_form() {
        let arrivals = [0.0, 1.0, 1.5, 4.0];
        let services = [2.0, 1.0, 1.0, 1.0];
        let w1 = waiting_times_from_arrivals(&arrivals, &services);
        let w2 = waiting_times(&[1.0, 0.5, 2.5], &services, 0.0);
        assert_eq!(w1, w2);
        assert_eq!(w1, vec![0.0, 1.0, 1.5, 0.0]);
    }

    #[test]
    fn finite_queue_blocks_when_full() {
        // Capacity 2 (1 in service + 1 waiting). Three simultaneous
        // arrivals: third blocked.
        let out = finite_queue(&[0.0, 0.0, 0.0, 10.0], &[1.0; 4], 2);
        assert_eq!(
            out,
            vec![
                Outcome::Served { wait: 0.0 },
                Outcome::Served { wait: 1.0 },
                Outcome::Blocked,
                Outcome::Served { wait: 0.0 },
            ]
        );
    }

    #[test]
    fn infinite_capacity_matches_lindley() {
        let arrivals = [0.0, 0.5, 0.9, 3.0, 3.1, 3.2, 9.0];
        let services = [1.0, 0.7, 2.0, 0.2, 0.2, 0.2, 1.0];
        let waits = waiting_times_from_arrivals(&arrivals, &services);
        let outcomes = finite_queue(&arrivals, &services, usize::MAX);
        for (w, o) in waits.iter().zip(&outcomes) {
            match o {
                Outcome::Served { wait } => assert!((wait - w).abs() < 1e-12),
                Outcome::Blocked => panic!("blocked with infinite capacity"),
            }
        }
    }

    #[test]
    fn blocked_customers_do_not_add_work() {
        // Capacity 1: while one customer is in service everything is lost,
        // so the server is never backlogged.
        let arrivals = [0.0, 0.1, 0.2, 0.3, 2.0];
        let services = [1.0; 5];
        let out = finite_queue(&arrivals, &services, 1);
        assert_eq!(out[0], Outcome::Served { wait: 0.0 });
        assert_eq!(out[1], Outcome::Blocked);
        assert_eq!(out[2], Outcome::Blocked);
        assert_eq!(out[3], Outcome::Blocked);
        assert_eq!(out[4], Outcome::Served { wait: 0.0 });
    }

    proptest! {
        #[test]
        fn prop_waits_are_nonnegative(
            gaps in proptest::collection::vec(0.0f64..5.0, 0..100),
            seed_services in proptest::collection::vec(0.0f64..5.0, 1..101),
        ) {
            let n = gaps.len() + 1;
            let services: Vec<f64> =
                seed_services.iter().cycle().take(n).copied().collect();
            let w = waiting_times(&gaps, &services, 0.0);
            prop_assert!(w.iter().all(|&x| x >= 0.0));
        }

        #[test]
        fn prop_monotone_in_service_times(
            gaps in proptest::collection::vec(0.0f64..3.0, 1..50),
            services in proptest::collection::vec(0.0f64..3.0, 1..51),
            bump in 0.0f64..2.0,
        ) {
            let n = gaps.len() + 1;
            let services: Vec<f64> =
                services.iter().cycle().take(n).copied().collect();
            let bigger: Vec<f64> = services.iter().map(|s| s + bump).collect();
            let w1 = waiting_times(&gaps, &services, 0.0);
            let w2 = waiting_times(&gaps, &bigger, 0.0);
            for (a, b) in w1.iter().zip(&w2) {
                prop_assert!(b >= a, "inflating service reduced a wait");
            }
        }

        #[test]
        fn prop_finite_queue_agrees_with_lindley_when_capacity_huge(
            gaps in proptest::collection::vec(0.0f64..3.0, 1..40),
            services in proptest::collection::vec(0.01f64..3.0, 1..41),
        ) {
            let n = gaps.len() + 1;
            let services: Vec<f64> =
                services.iter().cycle().take(n).copied().collect();
            let mut arrivals = vec![0.0f64];
            for g in &gaps {
                let last = *arrivals.last().expect("non-empty");
                arrivals.push(last + g);
            }
            let waits = waiting_times_from_arrivals(&arrivals, &services);
            let out = finite_queue(&arrivals, &services, 1_000_000);
            for (w, o) in waits.iter().zip(&out) {
                match o {
                    Outcome::Served { wait } => prop_assert!((wait - w).abs() < 1e-9),
                    Outcome::Blocked => prop_assert!(false, "blocked"),
                }
            }
        }
    }
}
