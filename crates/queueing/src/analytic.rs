//! Closed-form queueing results used as test oracles.
//!
//! The simulator and the Lindley engine are validated against textbook
//! formulas (Kleinrock vol. 2, the paper's ref \[14\]): M/M/1 and M/D/1
//! waiting times via Pollaczek–Khinchine, and M/M/1/K blocking.

/// Mean waiting time (excluding service) in an M/M/1 queue with arrival
/// rate λ and service rate μ: `Wq = ρ / (μ − λ)`.
///
/// # Panics
/// Panics unless `0 < λ < μ`.
pub fn mm1_mean_wait(lambda: f64, mu: f64) -> f64 {
    assert!(lambda > 0.0 && mu > lambda, "need 0 < lambda < mu");
    let rho = lambda / mu;
    rho / (mu - lambda)
}

/// Mean number in system for M/M/1: `L = ρ / (1 − ρ)`.
///
/// # Panics
/// Panics unless `0 < λ < μ`.
pub fn mm1_mean_in_system(lambda: f64, mu: f64) -> f64 {
    assert!(lambda > 0.0 && mu > lambda, "need 0 < lambda < mu");
    let rho = lambda / mu;
    rho / (1.0 - rho)
}

/// Mean waiting time in an M/G/1 queue by Pollaczek–Khinchine:
/// `Wq = λ E[S²] / (2 (1 − ρ))`.
///
/// # Panics
/// Panics unless the queue is stable (`ρ = λ E[S] < 1`) and moments are
/// positive.
pub fn mg1_mean_wait(lambda: f64, mean_service: f64, second_moment_service: f64) -> f64 {
    assert!(
        lambda > 0.0 && mean_service > 0.0,
        "positive rates required"
    );
    assert!(
        second_moment_service >= mean_service * mean_service,
        "E[S²] ≥ E[S]²"
    );
    let rho = lambda * mean_service;
    assert!(rho < 1.0, "unstable queue (rho = {rho})");
    lambda * second_moment_service / (2.0 * (1.0 - rho))
}

/// Mean waiting time in M/D/1 (deterministic service `s`):
/// `Wq = ρ s / (2 (1 − ρ))` — the PK formula with `E[S²] = s²`.
///
/// # Panics
/// Panics unless stable.
pub fn md1_mean_wait(lambda: f64, service: f64) -> f64 {
    mg1_mean_wait(lambda, service, service * service)
}

/// Blocking probability of an M/M/1/K queue (K = max customers in system):
/// `P_K = (1 − ρ) ρ^K / (1 − ρ^{K+1})`, with the ρ = 1 limit `1/(K+1)`.
///
/// # Panics
/// Panics unless `ρ > 0` and `K ≥ 1`.
pub fn mm1k_blocking(rho: f64, k: usize) -> f64 {
    assert!(rho > 0.0, "rho must be positive");
    assert!(k >= 1, "K must be at least 1");
    if (rho - 1.0).abs() < 1e-12 {
        return 1.0 / (k as f64 + 1.0);
    }
    let k = i32::try_from(k).expect("buffer size K fits i32");
    (1.0 - rho) * rho.powi(k) / (1.0 - rho.powi(k + 1))
}

/// Utilization (fraction of time busy) of a lossy queue: the accepted load
/// `ρ (1 − P_block)` for M/M/1/K.
pub fn mm1k_utilization(rho: f64, k: usize) -> f64 {
    rho * (1.0 - mm1k_blocking(rho, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_reference() {
        // λ = 1, μ = 2: ρ = 0.5, Wq = 0.5 / 1 = 0.5; L = 1.
        assert!((mm1_mean_wait(1.0, 2.0) - 0.5).abs() < 1e-12);
        assert!((mm1_mean_in_system(1.0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn md1_is_half_of_mm1() {
        // Classic result: deterministic service halves the queueing delay
        // relative to exponential service at the same rates.
        let lambda = 0.8;
        let mu = 1.0;
        let md1 = md1_mean_wait(lambda, 1.0 / mu);
        let mm1 = mm1_mean_wait(lambda, mu);
        assert!((md1 - 0.5 * mm1).abs() < 1e-12, "md1 {md1} mm1 {mm1}");
    }

    #[test]
    fn mg1_reduces_to_mm1() {
        // Exponential service with mean s has E[S²] = 2 s².
        let lambda = 0.6;
        let s = 1.0;
        let w = mg1_mean_wait(lambda, s, 2.0 * s * s);
        assert!((w - mm1_mean_wait(lambda, 1.0 / s)).abs() < 1e-12);
    }

    #[test]
    fn blocking_limits() {
        // Tiny load: blocking vanishes. Huge load: blocking → 1 - 1/ρ.
        assert!(mm1k_blocking(0.01, 10) < 1e-19);
        let b = mm1k_blocking(5.0, 20);
        assert!((b - (1.0 - 1.0 / 5.0)).abs() < 1e-9, "b {b}");
        // ρ = 1 limit.
        assert!((mm1k_blocking(1.0, 9) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn blocking_decreases_with_buffer() {
        let mut prev = 1.0;
        for k in 1..20 {
            let b = mm1k_blocking(0.8, k);
            assert!(b < prev, "blocking must fall with K");
            prev = b;
        }
    }

    #[test]
    fn utilization_caps_at_one() {
        for &rho in &[0.2, 0.9, 1.0, 3.0, 10.0] {
            let u = mm1k_utilization(rho, 7);
            assert!(u <= 1.0 + 1e-12, "rho {rho} -> util {u}");
        }
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_mg1_panics() {
        mg1_mean_wait(2.0, 1.0, 1.0);
    }
}
