//! Arrival streams and packet-size distributions.
//!
//! A traffic stream is a finite, time-sorted sequence of [`Arrival`]s — one
//! per cross-traffic packet. Streams are plain vectors so they can be
//! generated up front, merged, thinned and inspected deterministically, then
//! handed to the simulator (`Engine::attach_cross_traffic`).

use probenet_sim::{SimDuration, SimTime};
use rand::Rng;

/// One cross-traffic packet: when it reaches the queue and how big it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival instant at the attachment queue.
    pub at: SimTime,
    /// Wire size in bytes.
    pub size: u32,
}

impl Arrival {
    /// Convert to the `(time, size)` pairs the simulator consumes.
    pub fn into_pair(self) -> (SimTime, u32) {
        (self.at, self.size)
    }
}

/// Convert a stream to the simulator's `(time, size)` representation.
pub fn to_pairs(stream: &[Arrival]) -> Vec<(SimTime, u32)> {
    stream.iter().map(|a| a.into_pair()).collect()
}

/// A packet-size distribution.
///
/// The paper's workload analysis infers "a mix of bulk traffic with larger
/// packet size, and interactive traffic with smaller packet size";
/// [`PacketSize::Mixture`] expresses exactly such mixes.
#[derive(Debug, Clone)]
pub enum PacketSize {
    /// Every packet has the same size.
    Constant(u32),
    /// Uniformly distributed in `[min, max]` (inclusive).
    Uniform {
        /// Smallest size.
        min: u32,
        /// Largest size.
        max: u32,
    },
    /// A discrete mixture: `(weight, size)` pairs; weights need not sum to 1
    /// (they are normalized).
    Mixture(Vec<(f64, u32)>),
    /// Sizes drawn uniformly from an empirical sample.
    Empirical(Vec<u32>),
}

impl PacketSize {
    /// Draw one size.
    ///
    /// # Panics
    /// Panics on an empty mixture or empirical set, on `min > max`, or on a
    /// mixture with no positive weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            PacketSize::Constant(s) => *s,
            PacketSize::Uniform { min, max } => {
                assert!(min <= max, "uniform size range inverted");
                rng.gen_range(*min..=*max)
            }
            PacketSize::Mixture(parts) => {
                assert!(!parts.is_empty(), "empty size mixture");
                let total: f64 = parts.iter().map(|(w, _)| w.max(0.0)).sum();
                assert!(total > 0.0, "size mixture has no positive weight");
                let mut x = rng.gen::<f64>() * total;
                for (w, s) in parts {
                    x -= w.max(0.0);
                    if x <= 0.0 {
                        return *s;
                    }
                }
                parts.last().expect("non-empty").1
            }
            PacketSize::Empirical(sizes) => {
                assert!(!sizes.is_empty(), "empty empirical size set");
                sizes[rng.gen_range(0..sizes.len())]
            }
        }
    }

    /// Expected size in bytes.
    pub fn mean(&self) -> f64 {
        match self {
            PacketSize::Constant(s) => *s as f64,
            PacketSize::Uniform { min, max } => (*min as f64 + *max as f64) / 2.0,
            PacketSize::Mixture(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| w.max(0.0)).sum();
                parts
                    .iter()
                    .map(|(w, s)| w.max(0.0) / total * *s as f64)
                    .sum()
            }
            PacketSize::Empirical(sizes) => {
                sizes.iter().map(|&s| s as f64).sum::<f64>() / sizes.len() as f64
            }
        }
    }
}

/// Merge already-sorted streams into one sorted stream (stable: equal-time
/// arrivals keep their relative source order, earlier-listed streams first).
pub fn merge(streams: Vec<Vec<Arrival>>) -> Vec<Arrival> {
    let mut all: Vec<(SimTime, usize, usize, Arrival)> = Vec::new();
    for (src, s) in streams.into_iter().enumerate() {
        for (i, a) in s.into_iter().enumerate() {
            all.push((a.at, src, i, a));
        }
    }
    all.sort_by_key(|&(at, src, i, _)| (at, src, i));
    all.into_iter().map(|(_, _, _, a)| a).collect()
}

/// Keep each arrival independently with probability `keep` — Bernoulli
/// thinning, used e.g. to modulate a base load level.
///
/// # Panics
/// Panics unless `0.0 <= keep <= 1.0`.
pub fn thin<R: Rng + ?Sized>(stream: &[Arrival], keep: f64, rng: &mut R) -> Vec<Arrival> {
    assert!((0.0..=1.0).contains(&keep), "keep probability out of range");
    stream
        .iter()
        .copied()
        .filter(|_| rng.gen::<f64>() < keep)
        .collect()
}

/// Keep arrivals with a time-varying probability `keep(t)` clamped to
/// `[0, 1]` — models slow load modulation such as the diurnal congestion
/// cycle reported for the NSFNET (paper ref \[19\]).
pub fn thin_with<R, F>(stream: &[Arrival], mut keep: F, rng: &mut R) -> Vec<Arrival>
where
    R: Rng + ?Sized,
    F: FnMut(SimTime) -> f64,
{
    stream
        .iter()
        .copied()
        .filter(|a| rng.gen::<f64>() < keep(a.at).clamp(0.0, 1.0))
        .collect()
}

/// Shift every arrival later by `offset`.
pub fn delay(stream: &[Arrival], offset: SimDuration) -> Vec<Arrival> {
    stream
        .iter()
        .map(|a| Arrival {
            at: a.at + offset,
            size: a.size,
        })
        .collect()
}

/// Total bytes offered by a stream.
pub fn total_bytes(stream: &[Arrival]) -> u64 {
    stream.iter().map(|a| a.size as u64).sum()
}

/// Offered load in bits per second over `[0, horizon]`.
pub fn offered_bps(stream: &[Arrival], horizon: SimDuration) -> f64 {
    if horizon.is_zero() {
        return 0.0;
    }
    total_bytes(stream) as f64 * 8.0 / horizon.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn constant_size() {
        let mut r = rng();
        assert_eq!(PacketSize::Constant(512).sample(&mut r), 512);
        assert_eq!(PacketSize::Constant(512).mean(), 512.0);
    }

    #[test]
    fn uniform_size_in_range() {
        let mut r = rng();
        let d = PacketSize::Uniform { min: 40, max: 1500 };
        for _ in 0..1000 {
            let s = d.sample(&mut r);
            assert!((40..=1500).contains(&s));
        }
        assert_eq!(d.mean(), 770.0);
    }

    #[test]
    fn mixture_respects_weights() {
        let mut r = rng();
        let d = PacketSize::Mixture(vec![(0.8, 64), (0.2, 512)]);
        let n = 20_000;
        let small = (0..n).filter(|_| d.sample(&mut r) == 64).count();
        let frac = small as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.02, "small fraction {frac}");
        assert!((d.mean() - (0.8 * 64.0 + 0.2 * 512.0)).abs() < 1e-9);
    }

    #[test]
    fn empirical_draws_from_sample() {
        let mut r = rng();
        let d = PacketSize::Empirical(vec![100, 200, 300]);
        for _ in 0..100 {
            assert!([100, 200, 300].contains(&d.sample(&mut r)));
        }
        assert_eq!(d.mean(), 200.0);
    }

    #[test]
    #[should_panic(expected = "empty size mixture")]
    fn empty_mixture_panics() {
        PacketSize::Mixture(vec![]).sample(&mut rng());
    }

    #[test]
    fn merge_sorts_and_is_stable() {
        let a = vec![
            Arrival { at: at(1), size: 1 },
            Arrival { at: at(3), size: 3 },
        ];
        let b = vec![
            Arrival { at: at(1), size: 2 },
            Arrival { at: at(2), size: 4 },
        ];
        let m = merge(vec![a, b]);
        let order: Vec<u32> = m.iter().map(|x| x.size).collect();
        assert_eq!(order, vec![1, 2, 4, 3]);
    }

    #[test]
    fn thin_keeps_expected_fraction() {
        let stream: Vec<Arrival> = (0..10_000)
            .map(|i| Arrival { at: at(i), size: 1 })
            .collect();
        let kept = thin(&stream, 0.3, &mut rng());
        let frac = kept.len() as f64 / stream.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "kept fraction {frac}");
    }

    #[test]
    fn thin_with_time_varying_rate() {
        let stream: Vec<Arrival> = (0..10_000)
            .map(|i| Arrival { at: at(i), size: 1 })
            .collect();
        // Keep nothing in the first half, everything after.
        let kept = thin_with(
            &stream,
            |t| if t < at(5000) { 0.0 } else { 1.0 },
            &mut rng(),
        );
        assert_eq!(kept.len(), 5000);
        assert!(kept.iter().all(|a| a.at >= at(5000)));
    }

    #[test]
    fn offered_load_math() {
        let stream = vec![
            Arrival {
                at: at(0),
                size: 500,
            },
            Arrival {
                at: at(1),
                size: 500,
            },
        ];
        assert_eq!(total_bytes(&stream), 1000);
        let bps = offered_bps(&stream, SimDuration::from_secs(1));
        assert!((bps - 8000.0).abs() < 1e-9);
        assert_eq!(offered_bps(&stream, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn delay_shifts_times() {
        let s = vec![Arrival { at: at(5), size: 9 }];
        let d = delay(&s, SimDuration::from_millis(10));
        assert_eq!(d[0].at, at(15));
        assert_eq!(d[0].size, 9);
    }
}
