//! # probenet-traffic
//!
//! Cross-traffic models for probing experiments: the "Internet stream" of
//! Bolot's SIGCOMM '93 measurement model. A stream is a finite, time-sorted
//! vector of [`Arrival`]s generated from a seeded RNG, so every experiment
//! is reproducible.
//!
//! * [`process`] — arrival processes: Poisson, periodic, compound/batch
//!   Poisson, Markov on/off.
//! * [`stream`] — the [`Arrival`] type, packet-size distributions, and
//!   stream combinators (merge, thinning, time-varying modulation).
//! * [`mix`] — the paper's hypothesized Internet workload: small interactive
//!   (Telnet) packets plus batched bulk (FTP) packets, with calibration to a
//!   target bottleneck utilization.
//!
//! ```
//! use probenet_traffic::{InternetMix, offered_bps};
//! use probenet_sim::SimDuration;
//! use rand::{SeedableRng, rngs::StdRng};
//!
//! // 60% utilization of the paper's 128 kb/s transatlantic bottleneck,
//! // 20% interactive / 80% bulk.
//! let mix = InternetMix::calibrated(128_000, 0.6, 0.2, 3.0);
//! let arrivals = mix.generate(&mut StdRng::seed_from_u64(7),
//!                             SimDuration::from_secs(600));
//! let load = offered_bps(&arrivals, SimDuration::from_secs(600));
//! assert!((load / 128_000.0 - 0.6).abs() < 0.1);
//! ```

pub mod mix;
pub mod process;
pub mod stream;

pub use mix::{
    diurnal_factor, ftp_batches, ftp_transfers, telnet, telnet_sizes, InternetMix, FTP_PACKET_BYTES,
};
pub use process::{
    exponential, geometric, pareto, BatchPoissonStream, OnOffStream, ParetoOnOffStream,
    PeriodicStream, PoissonStream,
};
pub use stream::{
    delay, merge, offered_bps, thin, thin_with, to_pairs, total_bytes, Arrival, PacketSize,
};
