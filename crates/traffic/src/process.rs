//! Arrival-process generators.
//!
//! Each generator produces a time-sorted [`Arrival`] stream over a finite
//! horizon from a caller-supplied RNG, so experiments stay reproducible end
//! to end. The processes cover what the paper's traffic hypothesis needs:
//! Poisson interactive traffic, periodic streams (the probes themselves are
//! periodic), compound/batch arrivals ("one or more FTP packets arriving
//! together", §4), and on/off bulk transfers.

use probenet_sim::{SimDuration, SimTime};
use rand::Rng;

use crate::stream::{Arrival, PacketSize};

/// Draw an exponential variate with the given mean.
///
/// # Panics
/// Panics if `mean` is not positive and finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: SimDuration) -> SimDuration {
    let m = mean.as_secs_f64();
    assert!(
        m > 0.0 && m.is_finite(),
        "exponential mean must be positive"
    );
    // Inverse CDF; 1 - u is in (0, 1] so ln() is finite.
    let u: f64 = rng.gen();
    SimDuration::from_secs_f64(-m * (1.0 - u).ln())
}

/// Draw a geometric variate on {1, 2, …} with the given mean (≥ 1).
///
/// # Panics
/// Panics if `mean < 1`.
pub fn geometric<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean >= 1.0, "geometric mean must be >= 1");
    if mean == 1.0 {
        return 1;
    }
    let p = 1.0 / mean; // success probability
    let u: f64 = rng.gen();
    let k = ((1.0 - u).ln() / (1.0 - p).ln()).floor() as u64 + 1;
    k.max(1)
}

/// Poisson arrivals: i.i.d. exponential interarrival times at `rate_hz`
/// packets per second, sizes from `sizes`.
#[derive(Debug, Clone)]
pub struct PoissonStream {
    /// Mean arrival rate, packets per second.
    pub rate_hz: f64,
    /// Packet-size distribution.
    pub sizes: PacketSize,
}

impl PoissonStream {
    /// Generate arrivals over `[0, horizon)`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, horizon: SimDuration) -> Vec<Arrival> {
        assert!(self.rate_hz > 0.0, "Poisson rate must be positive");
        let mean = SimDuration::from_secs_f64(1.0 / self.rate_hz);
        let mut out = Vec::new();
        let mut t = SimTime::ZERO + exponential(rng, mean);
        let end = SimTime::ZERO + horizon;
        while t < end {
            out.push(Arrival {
                at: t,
                size: self.sizes.sample(rng),
            });
            t += exponential(rng, mean);
        }
        out
    }
}

/// Periodic arrivals every `interval`, optionally jittered by a uniform
/// offset in `[0, jitter)`, starting at `phase`.
#[derive(Debug, Clone)]
pub struct PeriodicStream {
    /// Spacing between arrivals.
    pub interval: SimDuration,
    /// Uniform jitter bound added to each nominal arrival time.
    pub jitter: SimDuration,
    /// Offset of the first arrival.
    pub phase: SimDuration,
    /// Packet-size distribution.
    pub sizes: PacketSize,
}

impl PeriodicStream {
    /// A plain periodic stream with no jitter and zero phase.
    pub fn every(interval: SimDuration, sizes: PacketSize) -> Self {
        PeriodicStream {
            interval,
            jitter: SimDuration::ZERO,
            phase: SimDuration::ZERO,
            sizes,
        }
    }

    /// Generate arrivals over `[0, horizon)` (nominal times; jitter may push
    /// the last arrival slightly past the horizon).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, horizon: SimDuration) -> Vec<Arrival> {
        assert!(
            !self.interval.is_zero(),
            "periodic interval must be positive"
        );
        let mut out = Vec::new();
        let mut nominal = SimTime::ZERO + self.phase;
        let end = SimTime::ZERO + horizon;
        while nominal < end {
            let j = if self.jitter.is_zero() {
                SimDuration::ZERO
            } else {
                SimDuration::from_nanos(rng.gen_range(0..self.jitter.as_nanos()))
            };
            out.push(Arrival {
                at: nominal + j,
                size: self.sizes.sample(rng),
            });
            nominal += self.interval;
        }
        // Jitter can locally reorder; restore sortedness.
        out.sort_by_key(|a| a.at);
        out
    }
}

/// Compound-Poisson (batch) arrivals: batch epochs form a Poisson process at
/// `batch_rate_hz`; each epoch delivers a geometric number of packets with
/// mean `mean_batch` back-to-back (same arrival instant).
///
/// This realizes the paper's §6 model, where "the Internet arrival process
/// is batch deterministic and the batch size distribution is general": the
/// large `b_n` the probes see are whole batches arriving between probe
/// arrivals.
#[derive(Debug, Clone)]
pub struct BatchPoissonStream {
    /// Batch-epoch rate, batches per second.
    pub batch_rate_hz: f64,
    /// Mean packets per batch (geometric, support {1, 2, …}).
    pub mean_batch: f64,
    /// Packet-size distribution within a batch.
    pub sizes: PacketSize,
}

impl BatchPoissonStream {
    /// Generate arrivals over `[0, horizon)`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, horizon: SimDuration) -> Vec<Arrival> {
        assert!(self.batch_rate_hz > 0.0, "batch rate must be positive");
        let mean = SimDuration::from_secs_f64(1.0 / self.batch_rate_hz);
        let mut out = Vec::new();
        let mut t = SimTime::ZERO + exponential(rng, mean);
        let end = SimTime::ZERO + horizon;
        while t < end {
            let k = geometric(rng, self.mean_batch);
            for _ in 0..k {
                out.push(Arrival {
                    at: t,
                    size: self.sizes.sample(rng),
                });
            }
            t += exponential(rng, mean);
        }
        out
    }
}

/// Draw a Pareto variate with the given minimum and shape α.
///
/// Heavy-tailed (infinite variance for α ≤ 2): the ON/OFF-period
/// distribution that makes aggregate traffic long-range dependent — the
/// time-scale structure later measurement work found in exactly the kind
/// of traces the paper's probes sample.
///
/// # Panics
/// Panics unless `min > 0` and `alpha > 0`.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, min: SimDuration, alpha: f64) -> SimDuration {
    assert!(!min.is_zero(), "pareto minimum must be positive");
    assert!(
        alpha > 0.0 && alpha.is_finite(),
        "pareto shape must be positive"
    );
    let u: f64 = rng.gen();
    // Inverse CDF: min * (1-u)^(-1/alpha); clamp the astronomically rare
    // overflow tail rather than panic.
    let factor = (1.0 - u).powf(-1.0 / alpha).min(1e6);
    SimDuration::from_secs_f64(min.as_secs_f64() * factor)
}

/// Markov-modulated on/off source: exponentially distributed ON and OFF
/// periods; while ON, packets are emitted every `spacing`. Models a bulk
/// (FTP-like) transfer alternating with silences.
#[derive(Debug, Clone)]
pub struct OnOffStream {
    /// Mean ON-period length.
    pub mean_on: SimDuration,
    /// Mean OFF-period length.
    pub mean_off: SimDuration,
    /// Packet spacing while ON.
    pub spacing: SimDuration,
    /// Packet-size distribution.
    pub sizes: PacketSize,
}

impl OnOffStream {
    /// Generate arrivals over `[0, horizon)`, starting in the OFF state.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, horizon: SimDuration) -> Vec<Arrival> {
        assert!(
            !self.spacing.is_zero(),
            "on/off packet spacing must be positive"
        );
        let mut out = Vec::new();
        let end = SimTime::ZERO + horizon;
        let mut t = SimTime::ZERO;
        loop {
            // OFF period.
            t += exponential(rng, self.mean_off);
            if t >= end {
                break;
            }
            // ON period.
            let on_end_d = exponential(rng, self.mean_on);
            let on_end = t + on_end_d;
            while t < on_end && t < end {
                out.push(Arrival {
                    at: t,
                    size: self.sizes.sample(rng),
                });
                t += self.spacing;
            }
            if t >= end {
                break;
            }
            t = on_end;
        }
        out
    }

    /// Long-run offered load in bits per second.
    pub fn mean_bps(&self) -> f64 {
        let duty =
            self.mean_on.as_secs_f64() / (self.mean_on.as_secs_f64() + self.mean_off.as_secs_f64());
        duty * self.sizes.mean() * 8.0 / self.spacing.as_secs_f64()
    }
}

/// On/off source with **Pareto-distributed** ON and OFF periods: the
/// heavy-tailed burst structure whose superposition is long-range
/// dependent. While ON, packets are emitted every `spacing`.
#[derive(Debug, Clone)]
pub struct ParetoOnOffStream {
    /// Minimum ON-period length.
    pub min_on: SimDuration,
    /// Minimum OFF-period length.
    pub min_off: SimDuration,
    /// Pareto shape α for both periods (1 < α < 2 gives finite mean,
    /// infinite variance — the LRD regime).
    pub alpha: f64,
    /// Packet spacing while ON.
    pub spacing: SimDuration,
    /// Packet-size distribution.
    pub sizes: PacketSize,
}

impl ParetoOnOffStream {
    /// Generate arrivals over `[0, horizon)`, starting OFF.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, horizon: SimDuration) -> Vec<Arrival> {
        assert!(!self.spacing.is_zero(), "packet spacing must be positive");
        let mut out = Vec::new();
        let end = SimTime::ZERO + horizon;
        let mut t = SimTime::ZERO;
        loop {
            t += pareto(rng, self.min_off, self.alpha);
            if t >= end {
                break;
            }
            let on_end = t + pareto(rng, self.min_on, self.alpha);
            while t < on_end && t < end {
                out.push(Arrival {
                    at: t,
                    size: self.sizes.sample(rng),
                });
                t += self.spacing;
            }
            if t >= end {
                break;
            }
            t = on_end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn exponential_mean_is_right() {
        let mut r = rng(1);
        let mean = SimDuration::from_millis(10);
        let n = 50_000;
        let total: f64 = (0..n)
            .map(|_| exponential(&mut r, mean).as_secs_f64())
            .sum();
        let m = total / n as f64;
        assert!((m - 0.010).abs() < 0.0005, "mean {m}");
    }

    #[test]
    fn geometric_mean_and_support() {
        let mut r = rng(2);
        let n = 50_000;
        let mut total = 0u64;
        for _ in 0..n {
            let k = geometric(&mut r, 3.0);
            assert!(k >= 1);
            total += k;
        }
        let m = total as f64 / n as f64;
        assert!((m - 3.0).abs() < 0.1, "mean {m}");
        assert_eq!(geometric(&mut r, 1.0), 1);
    }

    #[test]
    fn poisson_rate_is_right() {
        let s = PoissonStream {
            rate_hz: 200.0,
            sizes: PacketSize::Constant(100),
        };
        let arr = s.generate(&mut rng(3), SimDuration::from_secs(50));
        let rate = arr.len() as f64 / 50.0;
        assert!((rate - 200.0).abs() < 10.0, "rate {rate}");
        assert!(arr.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn periodic_is_exactly_periodic_without_jitter() {
        let s = PeriodicStream::every(SimDuration::from_millis(20), PacketSize::Constant(32));
        let arr = s.generate(&mut rng(4), SimDuration::from_secs(1));
        assert_eq!(arr.len(), 50);
        for (i, a) in arr.iter().enumerate() {
            assert_eq!(a.at, SimTime::from_millis(20 * i as u64));
        }
    }

    #[test]
    fn periodic_jitter_stays_bounded_and_sorted() {
        let s = PeriodicStream {
            interval: SimDuration::from_millis(10),
            jitter: SimDuration::from_millis(3),
            phase: SimDuration::from_millis(5),
            sizes: PacketSize::Constant(32),
        };
        let arr = s.generate(&mut rng(5), SimDuration::from_secs(1));
        assert!(arr.windows(2).all(|w| w[0].at <= w[1].at));
        for (i, a) in arr.iter().enumerate() {
            let nominal = 5 + 10 * i as u64;
            let dt = a.at.as_millis_f64() - nominal as f64;
            assert!((0.0..3.0).contains(&dt), "jitter {dt} out of bounds");
        }
    }

    #[test]
    fn batch_stream_batches_share_instants() {
        let s = BatchPoissonStream {
            batch_rate_hz: 50.0,
            mean_batch: 4.0,
            sizes: PacketSize::Constant(512),
        };
        let arr = s.generate(&mut rng(6), SimDuration::from_secs(20));
        // Mean packets/s should be about 200.
        let rate = arr.len() as f64 / 20.0;
        assert!((rate - 200.0).abs() < 25.0, "rate {rate}");
        // There must exist instants shared by several packets (batches).
        let same_instant_pairs = arr.windows(2).filter(|w| w[0].at == w[1].at).count();
        assert!(same_instant_pairs > arr.len() / 4);
    }

    #[test]
    fn onoff_duty_cycle_load() {
        let s = OnOffStream {
            mean_on: SimDuration::from_millis(500),
            mean_off: SimDuration::from_millis(500),
            spacing: SimDuration::from_millis(40),
            sizes: PacketSize::Constant(512),
        };
        let horizon = SimDuration::from_secs(200);
        let arr = s.generate(&mut rng(7), horizon);
        let measured = crate::stream::offered_bps(&arr, horizon);
        let expected = s.mean_bps();
        assert!(
            (measured - expected).abs() / expected < 0.15,
            "measured {measured} expected {expected}"
        );
        assert!(arr.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn pareto_respects_minimum_and_mean() {
        let mut r = rng(12);
        let min = SimDuration::from_millis(10);
        let alpha = 2.5; // finite mean: alpha*min/(alpha-1) ≈ 16.67 ms
        let n = 100_000;
        let mut total = 0.0;
        for _ in 0..n {
            let d = pareto(&mut r, min, alpha);
            assert!(d >= min);
            total += d.as_secs_f64();
        }
        let mean_ms = total / n as f64 * 1e3;
        let want = 2.5 * 10.0 / 1.5;
        assert!((mean_ms - want).abs() < 0.5, "mean {mean_ms} want {want}");
    }

    #[test]
    fn pareto_heavy_tail_exceeds_exponential_extremes() {
        // With alpha = 1.2 the tail is far heavier than an exponential of
        // the same mean: the max over many draws dwarfs the mean.
        let mut r = rng(13);
        let min = SimDuration::from_millis(1);
        let draws: Vec<f64> = (0..50_000)
            .map(|_| pareto(&mut r, min, 1.2).as_secs_f64())
            .collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        let max = draws.iter().copied().fold(0.0f64, f64::max);
        assert!(max > 50.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn pareto_onoff_is_burstier_than_exponential_onoff() {
        // Same mean periods, heavy vs light tails: the Pareto source's
        // arrival counts have a higher aggregate-level variance ratio.
        let horizon = SimDuration::from_secs(400);
        let spacing = SimDuration::from_millis(20);
        let pareto_stream = ParetoOnOffStream {
            min_on: SimDuration::from_millis(60),
            min_off: SimDuration::from_millis(60),
            alpha: 1.3,
            spacing,
            sizes: PacketSize::Constant(512),
        };
        // Matching mean period for alpha=1.3: 1.3/0.3*60 = 260 ms.
        let exp_stream = OnOffStream {
            mean_on: SimDuration::from_millis(260),
            mean_off: SimDuration::from_millis(260),
            spacing,
            sizes: PacketSize::Constant(512),
        };
        let count_var_ratio = |arr: &[Arrival]| {
            // Bin arrivals per second; variance of counts at aggregation 1
            // vs 16 (normalized): slower decay = burstier across scales.
            let mut counts = vec![0.0f64; 400];
            for a in arr {
                let b = (a.at.as_secs_f64() as usize).min(399);
                counts[b] += 1.0;
            }
            let v1 = probenet_sim_var(&counts);
            let m16: Vec<f64> = counts
                .chunks(16)
                .map(|c| c.iter().sum::<f64>() / 16.0)
                .collect();
            let v16 = probenet_sim_var(&m16);
            v16 / (v1 / 16.0) // 1.0 for iid-like, > 1 under LRD
        };
        let mut r1 = rng(14);
        let mut r2 = rng(14);
        let ratio_pareto = count_var_ratio(&pareto_stream.generate(&mut r1, horizon));
        let ratio_exp = count_var_ratio(&exp_stream.generate(&mut r2, horizon));
        assert!(
            ratio_pareto > 1.5 * ratio_exp,
            "pareto ratio {ratio_pareto:.2} vs exponential {ratio_exp:.2}"
        );
    }

    fn probenet_sim_var(xs: &[f64]) -> f64 {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let s = PoissonStream {
            rate_hz: 100.0,
            sizes: PacketSize::Uniform { min: 40, max: 1500 },
        };
        let a = s.generate(&mut rng(8), SimDuration::from_secs(5));
        let b = s.generate(&mut rng(8), SimDuration::from_secs(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        PoissonStream {
            rate_hz: 0.0,
            sizes: PacketSize::Constant(1),
        }
        .generate(&mut rng(9), SimDuration::from_secs(1));
    }
}
