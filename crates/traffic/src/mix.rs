//! Composite Internet workloads.
//!
//! The paper's central traffic hypothesis (§1, §4) is that the Internet
//! stream sharing the bottleneck with the probes is "a mix of bulk traffic
//! with larger packet size, and interactive traffic with smaller packet
//! size". This module builds exactly that mix: Poisson **Telnet**-like
//! interactive traffic plus batched **FTP**-like bulk traffic, with a
//! calibration helper that hits a target utilization of a given bottleneck.

use probenet_sim::SimDuration;
use rand::Rng;

use crate::process::{BatchPoissonStream, OnOffStream, PoissonStream};
use crate::stream::{merge, Arrival, PacketSize};

/// Wire size of a bulk (FTP) data packet: 512 bytes, the classic wide-area
/// MSS of the early 1990s. At the paper's 128 kb/s bottleneck one such
/// packet takes 32 ms to serve — the step size of the probe-compression
/// staircase.
pub const FTP_PACKET_BYTES: u32 = 512;

/// Interactive (Telnet) packets: a keystroke or small line plus TCP/IP
/// headers — tens of bytes on the wire.
pub fn telnet_sizes() -> PacketSize {
    PacketSize::Mixture(vec![(0.6, 41), (0.3, 64), (0.1, 120)])
}

/// A Poisson stream of interactive Telnet-like packets at `rate_hz`.
pub fn telnet(rate_hz: f64) -> PoissonStream {
    PoissonStream {
        rate_hz,
        sizes: telnet_sizes(),
    }
}

/// Batched FTP-like bulk arrivals: batches of 512-byte packets arriving
/// together, batch sizes geometric with mean `mean_batch`.
///
/// This matches the paper's observation that probes accumulate behind "one
/// or more FTP packets" received between consecutive probe arrivals, and its
/// §6 batch-deterministic model.
pub fn ftp_batches(batch_rate_hz: f64, mean_batch: f64) -> BatchPoissonStream {
    BatchPoissonStream {
        batch_rate_hz,
        mean_batch,
        sizes: PacketSize::Constant(FTP_PACKET_BYTES),
    }
}

/// An on/off bulk transfer emitting 512-byte packets every `spacing` while
/// ON — an alternative FTP model with longer-range burst structure.
pub fn ftp_transfers(
    mean_on: SimDuration,
    mean_off: SimDuration,
    spacing: SimDuration,
) -> OnOffStream {
    OnOffStream {
        mean_on,
        mean_off,
        spacing,
        sizes: PacketSize::Constant(FTP_PACKET_BYTES),
    }
}

/// The paper's hypothesized Internet workload: interactive + bulk.
#[derive(Debug, Clone)]
pub struct InternetMix {
    /// Interactive packet rate (packets/s).
    pub telnet_rate_hz: f64,
    /// Bulk batch-epoch rate (batches/s).
    pub ftp_batch_rate_hz: f64,
    /// Mean packets per bulk batch.
    pub ftp_mean_batch: f64,
}

impl InternetMix {
    /// Calibrate a mix to offer `utilization × mu_bps` bits per second at a
    /// bottleneck of rate `mu_bps`, splitting `telnet_share` of the load to
    /// interactive traffic and the rest to bulk batches with mean size
    /// `mean_batch`.
    ///
    /// # Panics
    /// Panics if `utilization` is not in `(0, 1)`, `telnet_share` not in
    /// `[0, 1]`, or `mean_batch < 1`.
    pub fn calibrated(mu_bps: u64, utilization: f64, telnet_share: f64, mean_batch: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization < 1.0,
            "utilization must be in (0,1)"
        );
        assert!(
            (0.0..=1.0).contains(&telnet_share),
            "telnet share must be in [0,1]"
        );
        assert!(mean_batch >= 1.0, "mean batch must be >= 1");
        let load_bps = utilization * mu_bps as f64;
        let telnet_bits_per_pkt = telnet_sizes().mean() * 8.0;
        let ftp_bits_per_pkt = FTP_PACKET_BYTES as f64 * 8.0;
        InternetMix {
            telnet_rate_hz: load_bps * telnet_share / telnet_bits_per_pkt,
            ftp_batch_rate_hz: load_bps * (1.0 - telnet_share) / (mean_batch * ftp_bits_per_pkt),
            ftp_mean_batch: mean_batch,
        }
    }

    /// Long-run offered load in bits per second.
    pub fn mean_bps(&self) -> f64 {
        self.telnet_rate_hz * telnet_sizes().mean() * 8.0
            + self.ftp_batch_rate_hz * self.ftp_mean_batch * FTP_PACKET_BYTES as f64 * 8.0
    }

    /// Generate the merged arrival stream over `[0, horizon)`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, horizon: SimDuration) -> Vec<Arrival> {
        let mut streams = Vec::new();
        if self.telnet_rate_hz > 0.0 {
            streams.push(telnet(self.telnet_rate_hz).generate(rng, horizon));
        }
        if self.ftp_batch_rate_hz > 0.0 {
            streams.push(
                ftp_batches(self.ftp_batch_rate_hz, self.ftp_mean_batch).generate(rng, horizon),
            );
        }
        merge(streams)
    }
}

/// A slowly varying "base congestion level" multiplier, as the diurnal cycle
/// reported for NSFNET delays (paper ref \[19\]): sinusoidal between
/// `low` and `high` with the given period. Apply with
/// [`crate::stream::thin_with`] against a stream generated at the `high`
/// level.
pub fn diurnal_factor(
    low: f64,
    high: f64,
    period: SimDuration,
) -> impl FnMut(probenet_sim::SimTime) -> f64 {
    assert!(low >= 0.0 && high <= 1.0 && low <= high, "bad diurnal band");
    let p = period.as_secs_f64();
    move |t: probenet_sim::SimTime| {
        let phase = (t.as_secs_f64() / p) * std::f64::consts::TAU;
        let x = 0.5 - 0.5 * phase.cos(); // 0 at t=0, 1 at half period
        (low + (high - low) * x).clamp(low, high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{offered_bps, thin_with};
    use probenet_sim::SimTime;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn calibrated_mix_hits_target_load() {
        let mu = 128_000;
        let mix = InternetMix::calibrated(mu, 0.6, 0.2, 3.0);
        let horizon = SimDuration::from_secs(300);
        let arr = mix.generate(&mut rng(1), horizon);
        let measured = offered_bps(&arr, horizon);
        let target = 0.6 * mu as f64;
        assert!(
            (measured - target).abs() / target < 0.08,
            "measured {measured} target {target}"
        );
        assert!((mix.mean_bps() - target).abs() / target < 1e-9);
    }

    #[test]
    fn mix_contains_both_classes() {
        let mix = InternetMix::calibrated(128_000, 0.5, 0.3, 2.0);
        let arr = mix.generate(&mut rng(2), SimDuration::from_secs(60));
        assert!(arr.iter().any(|a| a.size == FTP_PACKET_BYTES));
        assert!(arr.iter().any(|a| a.size < 128));
        assert!(arr.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn pure_bulk_mix_generates_only_ftp() {
        let mix = InternetMix::calibrated(128_000, 0.5, 0.0, 2.0);
        let arr = mix.generate(&mut rng(3), SimDuration::from_secs(30));
        assert!(!arr.is_empty());
        assert!(arr.iter().all(|a| a.size == FTP_PACKET_BYTES));
    }

    #[test]
    fn diurnal_factor_oscillates_in_band() {
        let mut f = diurnal_factor(0.3, 0.9, SimDuration::from_secs(86_400));
        let at_start = f(SimTime::ZERO);
        let at_noon = f(SimTime::from_secs(43_200));
        assert!((at_start - 0.3).abs() < 1e-9);
        assert!((at_noon - 0.9).abs() < 1e-9);
        for h in 0..48 {
            let v = f(SimTime::from_secs(1800 * h));
            assert!((0.3..=0.9).contains(&v));
        }
    }

    #[test]
    fn diurnal_thinning_modulates_load() {
        let mix = InternetMix::calibrated(128_000, 0.8, 0.2, 3.0);
        let horizon = SimDuration::from_secs(120);
        let base = mix.generate(&mut rng(4), horizon);
        // Quarter-wave over the horizon: the factor rises 0 -> 1 across it.
        let f = diurnal_factor(0.0, 1.0, SimDuration::from_secs(240));
        let modulated = thin_with(&base, f, &mut rng(5));
        // Load in the second half (factor near 1) must exceed the first.
        let mid = SimTime::from_secs(60);
        let first = modulated.iter().filter(|a| a.at < mid).count();
        let second = modulated.iter().filter(|a| a.at >= mid).count();
        assert!(second > first * 2, "first {first} second {second}");
    }

    #[test]
    fn ftp_transfer_model_is_bursty() {
        let s = ftp_transfers(
            SimDuration::from_millis(400),
            SimDuration::from_secs(2),
            SimDuration::from_millis(40),
        );
        let arr = s.generate(&mut rng(6), SimDuration::from_secs(60));
        assert!(!arr.is_empty());
        // Gaps much longer than the ON spacing must exist (the OFF periods).
        let long_gaps = arr
            .windows(2)
            .filter(|w| w[1].at - w[0].at > SimDuration::from_millis(500))
            .count();
        assert!(long_gaps > 3, "expected silences, got {long_gaps}");
    }

    #[test]
    #[should_panic(expected = "utilization must be in (0,1)")]
    fn overload_calibration_panics() {
        InternetMix::calibrated(128_000, 1.2, 0.2, 3.0);
    }
}
