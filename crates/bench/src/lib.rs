//! Shared experiment plumbing for the `repro` harness and the criterion
//! benches: one function per paper artifact, so a figure is regenerated the
//! same way whether it is being printed, benchmarked, or tested.

use probenet_core::{
    analyze_losses, analyze_workload, delta_sweep, impairment_scenario, LossAnalysis,
    PaperScenario, PhasePlot, SweepRow, WorkloadAnalysis,
};
use probenet_netdyn::{EchoServer, ExperimentConfig, RttSeries, UMD_CLOCK};
use probenet_sim::{discover_route, Path, SimDuration};
use probenet_traffic::FTP_PACKET_BYTES;
use serde::Serialize;

/// Default probing span per experiment. The paper ran 10 minutes; two
/// minutes is enough to reproduce every shape and keeps the full harness
/// fast.
pub const DEFAULT_SPAN_SECS: u64 = 120;

/// Number of probes for a span at interval δ.
fn count_for(span: SimDuration, delta: SimDuration) -> usize {
    (span.as_nanos() / delta.as_nanos()) as usize
}

/// Run the INRIA–UMd scenario at interval δ (ms) for `span_secs`.
pub fn run_inria_umd(delta_ms: u64, span_secs: u64, seed: u64) -> RttSeries {
    let scenario = PaperScenario::inria_umd(seed);
    let delta = SimDuration::from_millis(delta_ms);
    let config = ExperimentConfig::paper(delta)
        .with_count(count_for(SimDuration::from_secs(span_secs), delta));
    scenario.run(&config).series
}

/// Run the UMd–Pittsburgh scenario at interval δ (ms) for `span_secs`,
/// with the 3 ms UMd source clock of the paper's Figures 5–6.
pub fn run_umd_pitt(delta_ms: u64, span_secs: u64, seed: u64) -> RttSeries {
    let scenario = PaperScenario::umd_pitt(seed);
    let delta = SimDuration::from_millis(delta_ms);
    let config = ExperimentConfig::paper(delta)
        .with_count(count_for(SimDuration::from_secs(span_secs), delta))
        .with_clock(UMD_CLOCK);
    scenario.run(&config).series
}

/// Table 1: the INRIA → UMd route via TTL probing.
pub fn table1_route() -> Vec<String> {
    discover_route(&Path::inria_umd_1992(), SimDuration::from_millis(500))
}

/// Table 2: the UMd → Pittsburgh route via TTL probing.
pub fn table2_route() -> Vec<String> {
    discover_route(&Path::umd_pitt_1993(), SimDuration::from_millis(200))
}

/// Table 3: the δ sweep with loss metrics.
pub fn table3_rows(span_secs: u64, seed: u64) -> Vec<SweepRow> {
    let scenario = PaperScenario::inria_umd(seed);
    delta_sweep(&scenario, SimDuration::from_secs(span_secs))
        .into_iter()
        .map(|(row, _)| row)
        .collect()
}

/// Figure 1: the δ = 50 ms time series (`rtt_n`, zeros marking losses).
pub fn figure1_series(span_secs: u64, seed: u64) -> RttSeries {
    run_inria_umd(50, span_secs, seed)
}

/// Figure 2 analysis bundle: phase plot + loss metrics of the δ = 50 ms
/// INRIA–UMd run.
pub fn figure2_phase(span_secs: u64, seed: u64) -> (PhasePlot, LossAnalysis) {
    let series = run_inria_umd(50, span_secs, seed);
    (PhasePlot::from_series(&series), analyze_losses(&series))
}

/// Figure 4: the δ = 500 ms INRIA–UMd phase plot.
pub fn figure4_phase(span_secs: u64, seed: u64) -> PhasePlot {
    PhasePlot::from_series(&run_inria_umd(500, span_secs, seed))
}

/// Figure 5: the δ = 8 ms UMd–Pitt phase plot (3 ms clock).
pub fn figure5_phase(span_secs: u64, seed: u64) -> PhasePlot {
    PhasePlot::from_series(&run_umd_pitt(8, span_secs, seed))
}

/// Figure 6: the δ = 50 ms UMd–Pitt phase plot (3 ms clock).
pub fn figure6_phase(span_secs: u64, seed: u64) -> PhasePlot {
    PhasePlot::from_series(&run_umd_pitt(50, span_secs, seed))
}

/// Run the INRIA–UMd scenario with an ideal (unquantized) measurement
/// clock. The paper's Figures 8–9 resolve structure finer than the
/// DECstation tick (peaks 4.5 ms apart), so the workload figures are
/// regenerated with the ideal clock; the clock-banding phenomenon itself
/// is reproduced separately in Figures 5–6.
pub fn run_inria_umd_ideal_clock(delta_ms: u64, span_secs: u64, seed: u64) -> RttSeries {
    let scenario = PaperScenario::inria_umd(seed);
    let delta = SimDuration::from_millis(delta_ms);
    let config = ExperimentConfig::paper(delta)
        .with_count(count_for(SimDuration::from_secs(span_secs), delta))
        .with_clock(SimDuration::ZERO);
    scenario.run(&config).series
}

/// Figure 8: workload analysis of the δ = 20 ms INRIA–UMd run.
pub fn figure8_workload(span_secs: u64, seed: u64) -> WorkloadAnalysis {
    let series = run_inria_umd_ideal_clock(20, span_secs, seed);
    analyze_workload(&series, 128_000.0, FTP_PACKET_BYTES as f64 * 8.0, 100.0)
}

/// Figure 9: workload analysis of the δ = 100 ms INRIA–UMd run.
pub fn figure9_workload(span_secs: u64, seed: u64) -> WorkloadAnalysis {
    let series = run_inria_umd_ideal_clock(100, span_secs, seed);
    analyze_workload(&series, 128_000.0, FTP_PACKET_BYTES as f64 * 8.0, 200.0)
}

// ---------------------------------------------------------------------------
// Golden impairment traces
// ---------------------------------------------------------------------------

/// The impairment scenario pinned by the golden-trace suite.
pub const GOLDEN_SCENARIO: &str = "bursty-transatlantic";

/// Seeds with checked-in golden reports under `tests/golden/`.
pub const GOLDEN_SEEDS: [u64; 2] = [1993, 4021];

/// The `(δ ms, span s)` slices each golden report covers: the paper's
/// bursty regime (δ = 8 ms, clp ≫ ulp) and its independent-loss regime
/// (δ = 500 ms, losses pass the lag-1 randomness test).
pub const GOLDEN_SLICES: [(u64, u64); 2] = [(8, 60), (500, 300)];

/// Directory of the checked-in golden reports. Resolved at compile time
/// relative to this crate, so `repro --check` works from any working
/// directory of the same checkout.
pub fn golden_dir() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden")
}

/// Path of the golden report pinned to `seed`.
pub fn golden_path(seed: u64) -> String {
    format!("{}/{GOLDEN_SCENARIO}-seed{seed}.json", golden_dir())
}

/// FNV-1a 64-bit digest, as fixed-width hex.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// One δ-slice of a golden report: the headline loss and ordering metrics
/// plus a digest over every per-probe record, so any behavioral drift —
/// a single RTT one nanosecond off — changes the artifact byte-for-byte.
#[derive(Debug, Serialize)]
pub struct GoldenSlice {
    /// Probe interval δ in ms.
    pub delta_ms: u64,
    /// Probing span in seconds.
    pub span_secs: u64,
    /// Probes sent.
    pub sent: usize,
    /// Probes delivered.
    pub received: usize,
    /// Unconditional loss probability.
    pub ulp: f64,
    /// Conditional loss probability (absent without consecutive data).
    pub clp: Option<f64>,
    /// Palm-identity packet loss gap `1 / (1 − clp)`.
    pub plg_palm: Option<f64>,
    /// Loss-run-length histogram (`run_lengths[k]` = runs of k+1 losses).
    pub run_lengths: Vec<usize>,
    /// Lag-1 χ² independence verdict at α = 0.05.
    pub losses_look_random: bool,
    /// Arrival-order inversions among delivered probes.
    pub reordering: u64,
    /// Probes dropped by the impairment pipeline (burst/flap/corruption).
    pub probe_impair_drops: u64,
    /// FNV-1a 64 digest of the serialized per-probe record vector.
    pub records_fnv1a: String,
}

/// A golden impairment report: one pinned scenario + seed, measured over
/// [`GOLDEN_SLICES`].
#[derive(Debug, Serialize)]
pub struct GoldenReport {
    /// Scenario name, as accepted by `repro --impair`.
    pub scenario: String,
    /// Master seed of every slice.
    pub seed: u64,
    /// Per-δ results, in [`GOLDEN_SLICES`] order.
    pub slices: Vec<GoldenSlice>,
}

/// Measure one `(δ ms, span s)` slice of a named impairment scenario.
pub fn impair_slice(
    sc: &probenet_core::ImpairedScenario,
    seed: u64,
    delta_ms: u64,
    span_secs: u64,
) -> GoldenSlice {
    let out = sc.run(
        seed,
        SimDuration::from_millis(delta_ms),
        SimDuration::from_secs(span_secs),
    );
    let loss = analyze_losses(&out.series);
    let looks_random = loss.losses_look_random(0.05);
    let records = serde_json::to_string(&out.series.records).expect("serializable records");
    GoldenSlice {
        delta_ms,
        span_secs,
        sent: out.series.len(),
        received: out.series.received(),
        ulp: loss.ulp,
        clp: loss.clp,
        plg_palm: loss.plg_palm,
        run_lengths: loss.run_lengths,
        losses_look_random: looks_random,
        reordering: out.series.reordering_count(),
        probe_impair_drops: out.probe_impair_drops,
        records_fnv1a: fnv1a_hex(records.as_bytes()),
    }
}

/// Measure a named scenario over `slices`, scheduled on `threads` pool
/// workers. Slices come back in input order whatever the thread count, so
/// the report is byte-identical for any `threads` — the determinism
/// contract `repro --check` enforces. `None` for an unknown scenario name.
pub fn impair_report(
    name: &str,
    seed: u64,
    slices: &[(u64, u64)],
    threads: usize,
) -> Option<GoldenReport> {
    let sc = impairment_scenario(name)?;
    let slices =
        probenet_core::sched::par_map_threads(threads, slices.to_vec(), |(delta_ms, span_secs)| {
            impair_slice(&sc, seed, delta_ms, span_secs)
        });
    Some(GoldenReport {
        scenario: name.to_string(),
        seed,
        slices,
    })
}

/// Render the golden report for `seed` with its slices scheduled on
/// `threads` pool workers. Slices come back in [`GOLDEN_SLICES`] order
/// whatever the thread count, so the output is byte-identical for any
/// `threads` — the determinism contract `repro --check` enforces.
pub fn golden_report_threads(seed: u64, threads: usize) -> String {
    let report = impair_report(GOLDEN_SCENARIO, seed, &GOLDEN_SLICES, threads)
        .expect("pinned scenario exists");
    let mut body = serde_json::to_string_pretty(&report).expect("serializable golden report");
    body.push('\n');
    body
}

/// [`golden_report_threads`] on a single thread — the canonical rendering
/// the checked-in artifacts were generated with.
pub fn golden_report(seed: u64) -> String {
    golden_report_threads(seed, 1)
}

// ---------------------------------------------------------------------------
// Streaming collector: golden snapshots and ingest throughput
// ---------------------------------------------------------------------------

use probenet_stream::{
    BankConfig, Collector, CollectorConfig, CollectorReport, SessionKey, SessionProducer,
    StreamRecord,
};
use probenet_wire::snapshot::SessionFrame;

/// Path of the checked-in streaming-collector snapshot artifact.
pub fn stream_golden_path() -> String {
    format!("{}/stream-snapshots.json", golden_dir())
}

/// Number of simulated collectors the checked-in frame shards model: the
/// golden sessions are split round-robin across this many frame streams.
pub const GOLDEN_FRAME_SHARDS: usize = 2;

/// Path of one checked-in collector frame-stream shard.
pub fn stream_frames_path(shard: usize) -> String {
    format!("{}/stream-frames-c{shard}.bin", golden_dir())
}

/// Path of the checked-in mesh-campaign artifact (`repro mesh`): the
/// [`probenet_mesh::MeshReport`] of `MeshSpec::golden()`.
pub fn mesh_golden_path() -> String {
    format!("{}/mesh-report.json", golden_dir())
}

/// The streaming golden sessions: every `(seed, δ, span)` combination of
/// [`GOLDEN_SEEDS`] × [`GOLDEN_SLICES`] over [`GOLDEN_SCENARIO`].
pub fn stream_session_tasks() -> Vec<(u64, u64, u64)> {
    GOLDEN_SEEDS
        .iter()
        .flat_map(|&seed| {
            GOLDEN_SLICES
                .iter()
                .map(move |&(delta_ms, span_secs)| (seed, delta_ms, span_secs))
        })
        .collect()
}

/// Render the streaming-collector golden report: run every
/// [`stream_session_tasks`] session of the pinned scenario (series
/// generation scheduled on `threads` pool workers), feed each through its
/// own producer thread into one [`Collector`], and return the report JSON.
///
/// Each session's records are folded in sequence order into its own bank
/// and the report is sorted by session key, so the bytes are identical
/// whatever `threads` or the producer/collector interleaving — the same
/// determinism contract `repro --check` enforces for the batch goldens.
pub fn stream_report_threads(threads: usize) -> String {
    let mut body = stream_collector_report(threads).to_json();
    body.push('\n');
    body
}

/// The report behind [`stream_report_threads`], before JSON rendering —
/// the fleet tooling encodes its sessions as snapshot frames.
pub fn stream_collector_report(threads: usize) -> CollectorReport {
    let sc = impairment_scenario(GOLDEN_SCENARIO).expect("pinned scenario exists");
    let tasks = stream_session_tasks();
    let series_by_task = probenet_core::sched::par_map_threads(
        threads,
        tasks.clone(),
        |(seed, delta_ms, span_secs)| {
            sc.run(
                seed,
                SimDuration::from_millis(delta_ms),
                SimDuration::from_secs(span_secs),
            )
            .series
        },
    );
    let mut collector = Collector::new(CollectorConfig {
        channel_capacity: 256,
        snapshot_every: 0,
    });
    let mut producers = Vec::new();
    for ((seed, delta_ms, _), series) in tasks.iter().zip(&series_by_task) {
        let key = SessionKey::new(GOLDEN_SCENARIO, *delta_ms, *seed);
        let bank = BankConfig::bolot(
            *delta_ms as f64,
            series.wire_bytes,
            series.clock_resolution_ns,
        );
        producers.push(collector.add_session(key, bank));
    }
    let running = collector.start();
    let mut handles = Vec::new();
    for (p, series) in producers.into_iter().zip(series_by_task) {
        handles.push(std::thread::spawn(move || {
            for r in &series.records {
                assert!(p.push(r.to_stream()), "collector exited early");
            }
        }));
    }
    for h in handles {
        h.join().expect("producer thread");
    }
    running.join()
}

/// Split a report's sessions round-robin across `shards` simulated
/// collectors and encode each collector's back-to-back frame stream —
/// the whole-session sharding whose `probenet-merged` fold is
/// byte-identical to the single-process report.
pub fn frame_shards(report: &CollectorReport, shards: usize) -> Vec<Vec<u8>> {
    assert!(shards > 0, "at least one shard");
    let mut out = vec![Vec::new(); shards];
    for (i, session) in report.sessions.iter().enumerate() {
        out[i % shards].extend_from_slice(&SessionFrame::from_report(session).encode());
    }
    out
}

/// [`stream_report_threads`] on a single thread — the canonical rendering
/// the checked-in artifact was generated with.
pub fn stream_report() -> String {
    stream_report_threads(1)
}

/// Measured ingest throughput of the collector, as recorded in the
/// `--bench-json` report.
#[derive(Debug, Serialize)]
pub struct StreamIngest {
    /// Concurrent sessions (one producer thread each).
    pub sessions: u64,
    /// Records pushed per session.
    pub records_per_session: u64,
    /// Records folded across all sessions.
    pub total_records: u64,
    /// Wall time from collector start to report, ms.
    pub wall_ms: f64,
    /// Aggregate ingest rate across all sessions, records/sec.
    pub aggregate_records_per_sec: f64,
    /// Mean per-session ingest rate, records/sec.
    pub per_session_records_per_sec: f64,
    /// Records dropped (blocking `push` never drops; asserted zero).
    pub dropped: u64,
}

/// Drive `sessions` producer threads of `records_per_session` synthetic
/// records each through one collector and measure the ingest rate. Records
/// are generated before the clock starts, so the measurement covers only
/// channel transfer plus estimator folding; blocking `push` is used
/// throughout, so `dropped` is structurally zero (and asserted).
pub fn stream_ingest_throughput(sessions: usize, records_per_session: u64) -> StreamIngest {
    let per_session: Vec<Vec<StreamRecord>> = (0..sessions as u64)
        .map(|s| {
            let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ (s + 1);
            (0..records_per_session)
                .map(|i| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let lost = state.is_multiple_of(10);
                    StreamRecord {
                        seq: i,
                        sent_at_ns: i * 20_000_000,
                        rtt_ns: (!lost).then_some(100_000_000 + state % 50_000_000),
                    }
                })
                .collect()
        })
        .collect();
    let mut collector = Collector::new(CollectorConfig {
        channel_capacity: 4096,
        snapshot_every: 0,
    });
    let producers: Vec<SessionProducer> = (0..sessions as u64)
        .map(|s| {
            collector.add_session(
                SessionKey::new("bench-ingest", 20, s),
                BankConfig::bolot(20.0, 72, 0),
            )
        })
        .collect();
    let started = std::time::Instant::now(); // probenet-lint: allow(wall-clock-in-sim) ingest-throughput benchmark timing
    let running = collector.start();
    let handles: Vec<_> = producers
        .into_iter()
        .zip(per_session)
        .map(|(p, records)| {
            std::thread::spawn(move || {
                for r in records {
                    assert!(p.push(r), "collector exited early");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("producer thread");
    }
    let report = running.join();
    let wall = started.elapsed();
    let total = report.total_records();
    assert_eq!(total, sessions as u64 * records_per_session);
    assert_eq!(report.total_dropped(), 0, "blocking push must never drop");
    let secs = wall.as_secs_f64();
    StreamIngest {
        sessions: sessions as u64,
        records_per_session,
        total_records: total,
        wall_ms: secs * 1e3,
        aggregate_records_per_sec: total as f64 / secs,
        per_session_records_per_sec: total as f64 / secs / sessions as f64,
        dropped: report.total_dropped(),
    }
}

// ---------------------------------------------------------------------------
// Live reactor: loopback engine measurement (`repro live`, `live_engine`)
// ---------------------------------------------------------------------------

/// One live-reactor loopback measurement: the `live_engine` block of
/// `--bench-json` and the payload behind `repro live`.
#[derive(Serialize)]
pub struct LiveEngineRun {
    /// Concurrent probe sessions driven.
    pub sessions: u64,
    /// Lane sockets the sessions were multiplexed onto.
    pub lanes: u64,
    /// Probe interval δ per session, ms.
    pub delta_ms: u64,
    /// Probes scheduled per session.
    pub probes_per_session: u64,
    /// Wall time of the run (including the straggler drain), ms.
    pub wall_ms: f64,
    /// Aggregate probe send rate across all sessions, probes/sec.
    pub aggregate_pps: f64,
    /// Sessions per reactor core. The reactor is a single thread, so this
    /// equals `sessions` — reported explicitly because it is the paper's
    /// scale-out claim ("thousands of concurrent sessions per core").
    pub sessions_per_core: u64,
    /// Timer-wheel fires over the run.
    pub timers_fired: u64,
    /// Median timer-wheel lateness (fire − deadline), µs.
    pub lateness_p50_us: u64,
    /// 90th-percentile timer-wheel lateness, µs.
    pub lateness_p90_us: u64,
    /// 99th-percentile timer-wheel lateness, µs.
    pub lateness_p99_us: u64,
    /// Worst timer-wheel lateness, µs.
    pub lateness_max_us: u64,
    /// Whether `sendmmsg`/`recvmmsg` batching was used (false = the
    /// per-datagram fallback ladder).
    pub used_batching: bool,
    /// Probes handed to the kernel.
    pub probes_sent: u64,
    /// Valid echo replies folded into sessions.
    pub replies_received: u64,
    /// Records the reactor produced (one per scheduled probe).
    pub produced: u64,
    /// Records the stream collector folded.
    pub records: u64,
    /// Records the bounded SPSC rings rejected (counted, never silent).
    pub dropped: u64,
}

impl LiveEngineRun {
    /// The drop-accounting identity every live run must satisfy: each
    /// produced record is either folded or counted as dropped.
    pub fn accounting_balanced(&self) -> bool {
        self.produced == self.records + self.dropped
    }
}

/// Drive `sessions` concurrent loopback probe sessions (interval
/// `delta_ms`, `probes_per_session` probes each, start offsets staggered
/// across one δ) from a single reactor thread against an in-process
/// [`EchoServer`], stream every record into one collector over bounded
/// SPSC rings, and report rates, lateness percentiles and the
/// drop-accounting identity. Returns the collector report alongside the
/// measurement so callers (`repro live --stream`) can render the
/// estimator banks.
pub fn live_engine_run(
    sessions: usize,
    delta_ms: u64,
    probes_per_session: usize,
) -> std::io::Result<(LiveEngineRun, CollectorReport)> {
    use std::time::Duration;

    assert!(sessions > 0, "live run needs at least one session");
    assert!(delta_ms > 0, "probe interval must be positive");
    let server = EchoServer::spawn("127.0.0.1:0")?;
    let delta = Duration::from_millis(delta_ms);
    let specs: Vec<probenet_live::SessionSpec> = (0..sessions)
        .map(|i| probenet_live::SessionSpec {
            key: SessionKey::new("bench/live", delta_ms, i as u64),
            target: server.local_addr(),
            interval: delta,
            count: probes_per_session,
            // Spread session starts across one δ so sends interleave
            // instead of arriving as a synchronized burst each interval.
            start_offset: Duration::from_nanos(
                delta.as_nanos() as u64 * i as u64 / sessions as u64,
            ),
            clock_resolution_ns: 0,
        })
        .collect();

    let mut collector = Collector::new(CollectorConfig {
        channel_capacity: 1024,
        snapshot_every: 0,
    });
    // One producer per session, indexed by the seed the spec carries.
    let mut producers: Vec<Option<SessionProducer>> = (0..sessions as u64)
        .map(|s| {
            Some(collector.add_session(
                SessionKey::new("bench/live", delta_ms, s),
                BankConfig::bolot(delta_ms as f64, 72, 0),
            ))
        })
        .collect();
    let running = collector.start();

    let mut produced = 0u64;
    let report = probenet_live::run_sessions(
        specs,
        &probenet_live::LiveConfig::default(),
        |outcome: probenet_live::SessionOutcome| {
            let producer = producers
                .get_mut(outcome.key.seed as usize)
                .and_then(Option::take)
                .expect("one outcome per session");
            for record in outcome.records {
                produced += 1;
                // Non-blocking offer: the bounded ring may reject under
                // pressure, but every rejection lands in the session's
                // drop counter — the identity below stays exact.
                producer.offer(record);
            }
        },
    )?;
    drop(producers);
    let collected = running.join();

    let run = LiveEngineRun {
        sessions: report.sessions as u64,
        lanes: report.lanes as u64,
        delta_ms,
        probes_per_session: probes_per_session as u64,
        wall_ms: report.wall_ns as f64 / 1e6,
        aggregate_pps: report.aggregate_pps(),
        sessions_per_core: report.sessions as u64,
        timers_fired: report.timers_fired,
        lateness_p50_us: report.lateness_p50_us,
        lateness_p90_us: report.lateness_p90_us,
        lateness_p99_us: report.lateness_p99_us,
        lateness_max_us: report.lateness_max_us,
        used_batching: report.used_batching,
        probes_sent: report.stats.probes_sent,
        replies_received: report.stats.replies_received,
        produced,
        records: collected.total_records(),
        dropped: collected.total_dropped(),
    };
    Ok((run, collected))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_match_paper_tables() {
        let t1 = table1_route();
        assert_eq!(t1.len(), 10);
        assert_eq!(t1[0], "tom.inria.fr");
        let t2 = table2_route();
        assert_eq!(t2.len(), 13);
        assert_eq!(t2[12], "hub-eh.gw.pitt.edu");
    }

    #[test]
    fn figure2_bundle_is_consistent() {
        let (plot, loss) = figure2_phase(30, 1);
        assert!(!plot.points.is_empty());
        assert_eq!(plot.delta_ms, 50.0);
        assert!(loss.sent > 0);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn live_engine_run_balances_drop_accounting() {
        let (run, report) = live_engine_run(8, 5, 4).expect("loopback live run");
        assert_eq!(run.sessions, 8);
        assert_eq!(run.produced, 8 * 4);
        assert!(run.accounting_balanced(), "produced != records + dropped");
        assert_eq!(report.sessions.len(), 8);
        assert!(run.aggregate_pps > 0.0);
    }
}
