//! Shared experiment plumbing for the `repro` harness and the criterion
//! benches: one function per paper artifact, so a figure is regenerated the
//! same way whether it is being printed, benchmarked, or tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use probenet_core::{
    analyze_losses, analyze_workload, delta_sweep, LossAnalysis, PaperScenario, PhasePlot,
    SweepRow, WorkloadAnalysis,
};
use probenet_netdyn::{ExperimentConfig, RttSeries, UMD_CLOCK};
use probenet_sim::{discover_route, Path, SimDuration};
use probenet_traffic::FTP_PACKET_BYTES;

/// Default probing span per experiment. The paper ran 10 minutes; two
/// minutes is enough to reproduce every shape and keeps the full harness
/// fast.
pub const DEFAULT_SPAN_SECS: u64 = 120;

/// Number of probes for a span at interval δ.
fn count_for(span: SimDuration, delta: SimDuration) -> usize {
    (span.as_nanos() / delta.as_nanos()) as usize
}

/// Run the INRIA–UMd scenario at interval δ (ms) for `span_secs`.
pub fn run_inria_umd(delta_ms: u64, span_secs: u64, seed: u64) -> RttSeries {
    let scenario = PaperScenario::inria_umd(seed);
    let delta = SimDuration::from_millis(delta_ms);
    let config = ExperimentConfig::paper(delta)
        .with_count(count_for(SimDuration::from_secs(span_secs), delta));
    scenario.run(&config).series
}

/// Run the UMd–Pittsburgh scenario at interval δ (ms) for `span_secs`,
/// with the 3 ms UMd source clock of the paper's Figures 5–6.
pub fn run_umd_pitt(delta_ms: u64, span_secs: u64, seed: u64) -> RttSeries {
    let scenario = PaperScenario::umd_pitt(seed);
    let delta = SimDuration::from_millis(delta_ms);
    let config = ExperimentConfig::paper(delta)
        .with_count(count_for(SimDuration::from_secs(span_secs), delta))
        .with_clock(UMD_CLOCK);
    scenario.run(&config).series
}

/// Table 1: the INRIA → UMd route via TTL probing.
pub fn table1_route() -> Vec<String> {
    discover_route(&Path::inria_umd_1992(), SimDuration::from_millis(500))
}

/// Table 2: the UMd → Pittsburgh route via TTL probing.
pub fn table2_route() -> Vec<String> {
    discover_route(&Path::umd_pitt_1993(), SimDuration::from_millis(200))
}

/// Table 3: the δ sweep with loss metrics.
pub fn table3_rows(span_secs: u64, seed: u64) -> Vec<SweepRow> {
    let scenario = PaperScenario::inria_umd(seed);
    delta_sweep(&scenario, SimDuration::from_secs(span_secs))
        .into_iter()
        .map(|(row, _)| row)
        .collect()
}

/// Figure 1: the δ = 50 ms time series (`rtt_n`, zeros marking losses).
pub fn figure1_series(span_secs: u64, seed: u64) -> RttSeries {
    run_inria_umd(50, span_secs, seed)
}

/// Figure 2 analysis bundle: phase plot + loss metrics of the δ = 50 ms
/// INRIA–UMd run.
pub fn figure2_phase(span_secs: u64, seed: u64) -> (PhasePlot, LossAnalysis) {
    let series = run_inria_umd(50, span_secs, seed);
    (PhasePlot::from_series(&series), analyze_losses(&series))
}

/// Figure 4: the δ = 500 ms INRIA–UMd phase plot.
pub fn figure4_phase(span_secs: u64, seed: u64) -> PhasePlot {
    PhasePlot::from_series(&run_inria_umd(500, span_secs, seed))
}

/// Figure 5: the δ = 8 ms UMd–Pitt phase plot (3 ms clock).
pub fn figure5_phase(span_secs: u64, seed: u64) -> PhasePlot {
    PhasePlot::from_series(&run_umd_pitt(8, span_secs, seed))
}

/// Figure 6: the δ = 50 ms UMd–Pitt phase plot (3 ms clock).
pub fn figure6_phase(span_secs: u64, seed: u64) -> PhasePlot {
    PhasePlot::from_series(&run_umd_pitt(50, span_secs, seed))
}

/// Run the INRIA–UMd scenario with an ideal (unquantized) measurement
/// clock. The paper's Figures 8–9 resolve structure finer than the
/// DECstation tick (peaks 4.5 ms apart), so the workload figures are
/// regenerated with the ideal clock; the clock-banding phenomenon itself
/// is reproduced separately in Figures 5–6.
pub fn run_inria_umd_ideal_clock(delta_ms: u64, span_secs: u64, seed: u64) -> RttSeries {
    let scenario = PaperScenario::inria_umd(seed);
    let delta = SimDuration::from_millis(delta_ms);
    let config = ExperimentConfig::paper(delta)
        .with_count(count_for(SimDuration::from_secs(span_secs), delta))
        .with_clock(SimDuration::ZERO);
    scenario.run(&config).series
}

/// Figure 8: workload analysis of the δ = 20 ms INRIA–UMd run.
pub fn figure8_workload(span_secs: u64, seed: u64) -> WorkloadAnalysis {
    let series = run_inria_umd_ideal_clock(20, span_secs, seed);
    analyze_workload(&series, 128_000.0, FTP_PACKET_BYTES as f64 * 8.0, 100.0)
}

/// Figure 9: workload analysis of the δ = 100 ms INRIA–UMd run.
pub fn figure9_workload(span_secs: u64, seed: u64) -> WorkloadAnalysis {
    let series = run_inria_umd_ideal_clock(100, span_secs, seed);
    analyze_workload(&series, 128_000.0, FTP_PACKET_BYTES as f64 * 8.0, 200.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_match_paper_tables() {
        let t1 = table1_route();
        assert_eq!(t1.len(), 10);
        assert_eq!(t1[0], "tom.inria.fr");
        let t2 = table2_route();
        assert_eq!(t2.len(), 13);
        assert_eq!(t2[12], "hub-eh.gw.pitt.edu");
    }

    #[test]
    fn figure2_bundle_is_consistent() {
        let (plot, loss) = figure2_phase(30, 1);
        assert!(!plot.points.is_empty());
        assert_eq!(plot.delta_ms, 50.0);
        assert!(loss.sent > 0);
    }
}
