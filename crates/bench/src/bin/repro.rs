//! `repro` — regenerate every table and figure of Bolot, SIGCOMM '93.
//!
//! ```text
//! repro [--artifact all|table1|table2|table3|fig1|fig2|fig4|fig5|fig6|fig8|fig9|model|campaign]
//!       [--span-secs N] [--seed N] [--json] [--serial] [--bench-json]
//! ```
//!
//! Each artifact prints the paper's reported values next to the measured
//! ones, plus a terminal rendering of the figure. `--json` additionally
//! emits machine-readable results on stdout.
//!
//! Artifacts are independent, so they render into per-artifact string
//! buffers on the bounded work-stealing pool (`probenet_core::sched`) and
//! are printed in the fixed paper order afterwards — output is identical
//! whatever the thread count. `--serial` forces everything onto one
//! thread; `--bench-json` times a serial and a pooled pass and writes a
//! machine-readable `BENCH_<date>.json` next to the working directory.
//!
//! Figures 3 and 7 of the paper are schematics (the queueing model and the
//! Lindley proof), realized as code in `probenet_queueing::{BolotModel,
//! lindley}` and covered by that crate's tests.

use std::fmt::Write as _;
use std::time::{Duration, Instant, SystemTime};

use probenet_bench::*;
use probenet_core::{
    analyze_losses, impairment_scenarios, render_histogram, render_phase_plot, render_table3,
    render_time_series, PeakLabel,
};
use serde::Serialize;

/// `writeln!` into a `String` buffer (infallible, so the result is dropped).
macro_rules! o {
    ($out:expr $(, $($arg:tt)*)?) => {
        let _ = writeln!($out $(, $($arg)*)?);
    };
}

struct Args {
    artifact: String,
    span_secs: u64,
    seed: u64,
    json: bool,
    serial: bool,
    bench_json: bool,
    bench_gate: bool,
    impair: Option<String>,
    stream: bool,
    check: bool,
    bless: bool,
    emit_frames: Option<String>,
    merge: Option<Vec<String>>,
    mesh: bool,
    live: bool,
    live_sessions: usize,
    live_delta_ms: u64,
    live_duration_secs: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        artifact: "all".to_string(),
        span_secs: DEFAULT_SPAN_SECS,
        seed: 1993,
        json: false,
        serial: false,
        bench_json: false,
        bench_gate: false,
        impair: None,
        stream: false,
        check: false,
        bless: false,
        emit_frames: None,
        merge: None,
        mesh: false,
        live: false,
        live_sessions: 64,
        live_delta_ms: 20,
        live_duration_secs: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        // `repro merge f1 f2 ...` — collect the frame files; trailing flags
        // (--check/--bless) fall through to the normal flag loop.
        if a == "merge" && args.merge.is_none() {
            let mut files = Vec::new();
            let mut rest = None;
            for v in it.by_ref() {
                if v.starts_with("--") {
                    rest = Some(v);
                    break;
                }
                files.push(v);
            }
            args.merge = Some(files);
            if let Some(flag) = rest {
                match flag.as_str() {
                    "--check" => args.check = true,
                    "--bless" => args.bless = true,
                    other => {
                        eprintln!("unknown argument: {other}");
                        std::process::exit(2);
                    }
                }
            }
            continue;
        }
        match a.as_str() {
            // `repro mesh [--check|--bless]` — the mesh campaign; takes no
            // positional operands, trailing flags use the normal loop.
            "mesh" => args.mesh = true,
            // `repro live [--sessions N] [--delta MS] [--duration S]` —
            // the live reactor loopback engine.
            "live" => args.live = true,
            "--sessions" => {
                args.live_sessions = it
                    .next()
                    .expect("--sessions needs a value")
                    .parse()
                    .expect("sessions must be an integer")
            }
            "--delta" => {
                args.live_delta_ms = it
                    .next()
                    .expect("--delta needs a value (ms)")
                    .parse()
                    .expect("delta must be an integer (ms)")
            }
            "--duration" => {
                args.live_duration_secs = it
                    .next()
                    .expect("--duration needs a value (seconds)")
                    .parse()
                    .expect("duration must be an integer (seconds)")
            }
            "--artifact" => args.artifact = it.next().expect("--artifact needs a value"),
            "--span-secs" => {
                args.span_secs = it
                    .next()
                    .expect("--span-secs needs a value")
                    .parse()
                    .expect("span must be an integer")
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer")
            }
            "--json" => args.json = true,
            "--serial" => args.serial = true,
            "--bench-json" => args.bench_json = true,
            "--bench-gate" => args.bench_gate = true,
            "--impair" => args.impair = Some(it.next().expect("--impair needs a scenario name")),
            "--stream" => args.stream = true,
            "--check" => args.check = true,
            "--bless" => args.bless = true,
            "--emit-frames" => {
                args.emit_frames = Some(it.next().expect("--emit-frames needs a path prefix"))
            }
            "--help" | "-h" => {
                println!(
                    "repro [--artifact all|table1|table2|table3|fig1|fig2|fig4|fig5|fig6|fig8|fig9|model|campaign] \
                     [--span-secs N] [--seed N] [--json] [--serial] [--bench-json]\n\
                     repro --impair <scenario|list> [--span-secs N] [--seed N] [--json] [--serial]\n\
                     repro --stream [--check | --bless] [--serial] [--emit-frames <prefix>]   (streaming-collector snapshots)\n\
                     repro merge <frames.bin>... [--check | --bless]   (fold collector frame files)\n\
                     repro mesh [--check | --bless] [--serial]   (mesh campaign + per-link loss decomposition)\n\
                     repro live [--sessions N] [--delta MS] [--duration S] [--stream] [--json]   (live reactor loopback engine)\n\
                     repro --check | --bless   (verify / regenerate the golden traces in tests/golden/)\n\
                     repro --bench-gate   (fail if engine events/s regresses past tests/bench_baseline.json)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn heading(out: &mut String, s: &str) {
    o!(out, "\n=== {s} ===");
}

fn table1(_a: &Args) -> String {
    let mut out = String::new();
    heading(&mut out, "Table 1: route INRIA -> UMd (July 1992)");
    o!(
        out,
        "paper: 10 hops, transatlantic bottleneck between nodes 4 and 5"
    );
    for (i, n) in table1_route().iter().enumerate() {
        o!(out, "{:>3}  {n}", i + 1);
    }
    out
}

fn table2(_a: &Args) -> String {
    let mut out = String::new();
    heading(&mut out, "Table 2: route UMd -> Pittsburgh (May 1993)");
    o!(out, "paper: 13 hops over the T3 ANSnet backbone");
    for (i, n) in table2_route().iter().enumerate() {
        o!(out, "{:>3}  {n}", i + 1);
    }
    out
}

fn fig1(a: &Args) -> String {
    let mut out = String::new();
    heading(&mut out, "Figure 1: rtt_n vs n, delta = 50 ms");
    let series = figure1_series(a.span_secs, a.seed);
    if a.json {
        o!(
            out,
            "{}",
            serde_json::to_string(&series).expect("serializable series")
        );
    }
    let strip: Vec<f64> = series.rtt_or_zero_ms().into_iter().take(800).collect();
    let _ = write!(out, "{}", render_time_series(&strip, 100, 18));
    o!(
        out,
        "paper: loss probability 9% for this experiment | measured: {:.1}% over {} probes",
        series.loss_probability() * 100.0,
        series.len()
    );
    out
}

fn fig2(a: &Args) -> String {
    let mut out = String::new();
    heading(&mut out, "Figure 2: phase plot, delta = 50 ms (INRIA-UMd)");
    let (plot, loss) = figure2_phase(a.span_secs, a.seed);
    if a.json {
        o!(
            out,
            "{}",
            serde_json::to_string(&plot).expect("serializable plot")
        );
    }
    let _ = write!(out, "{}", render_phase_plot(&plot, 72, 24));
    o!(
        out,
        "paper: D ~ 140 ms | measured min rtt (D + P/mu): {:.1} ms",
        plot.min_rtt_ms().unwrap_or(f64::NAN)
    );
    match plot.bottleneck_estimate(10) {
        Some(est) => {
            o!(
                out,
                "paper: compression-line x-intercept ~48 ms => mu ~ 130 kb/s (with P = 32 B)"
            );
            o!(
                out,
                "measured: intercept {:.1} ms, mu = {:.1} kb/s (P = 72 B wire), {} points on the line",
                est.intercept_ms,
                est.mu_bps / 1e3,
                est.compression_points
            );
            o!(
                out,
                "clock-resolution bounds: [{:.0}, {:.0}] kb/s (3.906 ms DECstation clock); \
                 configured truth: 128.0 kb/s",
                est.mu_lo_bps / 1e3,
                est.mu_hi_bps / 1e3
            );
        }
        None => {
            o!(out, "measured: no compression line detected");
        }
    }
    o!(out, "losses in this run: ulp {:.2}", loss.ulp);
    out
}

fn fig4(a: &Args) -> String {
    let mut out = String::new();
    heading(&mut out, "Figure 4: phase plot, delta = 500 ms (INRIA-UMd)");
    let plot = figure4_phase(a.span_secs.max(240), a.seed);
    if a.json {
        o!(
            out,
            "{}",
            serde_json::to_string(&plot).expect("serializable plot")
        );
    }
    let _ = write!(out, "{}", render_phase_plot(&plot, 72, 24));
    let offset = -(500.0 - 72.0 * 8.0 / 128.0); // P/mu - delta, ms
    let on_line = plot.near_line(offset, 2.0);
    o!(
        out,
        "paper: only 2 points on the compression line; scatter around the diagonal"
    );
    o!(
        out,
        "measured: {} points near the line y = x {:.0} ms, {} of {} near the diagonal (+-10 ms)",
        on_line,
        offset,
        plot.near_diagonal(10.0),
        plot.points.len()
    );
    o!(
        out,
        "compression-line detector: {:?}",
        plot.bottleneck_estimate(10).map(|e| e.mu_bps)
    );
    out
}

fn fig5(a: &Args) -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "Figure 5: phase plot, delta = 8 ms (UMd-Pitt, 3 ms clock)",
    );
    let plot = figure5_phase(a.span_secs, a.seed);
    if a.json {
        o!(
            out,
            "{}",
            serde_json::to_string(&plot).expect("serializable plot")
        );
    }
    let _ = write!(out, "{}", render_phase_plot(&plot, 72, 24));
    o!(
        out,
        "paper: lines y = x and y = x - 8 visible; clock-resolution banding"
    );
    o!(
        out,
        "measured: {} points near diagonal (+-1.5 ms), {} near y = x - 8 (+-1.5 ms), {} total",
        plot.near_diagonal(1.5),
        plot.near_line(-8.0, 1.5),
        plot.points.len()
    );
    out
}

fn fig6(a: &Args) -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "Figure 6: phase plot, delta = 50 ms (UMd-Pitt, 3 ms clock)",
    );
    let plot = figure6_phase(a.span_secs, a.seed);
    if a.json {
        o!(
            out,
            "{}",
            serde_json::to_string(&plot).expect("serializable plot")
        );
    }
    let _ = write!(out, "{}", render_phase_plot(&plot, 72, 24));
    o!(
        out,
        "paper: scatter around the diagonal (no compression at 50 ms)"
    );
    o!(
        out,
        "measured: {} of {} points near the diagonal (+-6 ms); detector: {:?}",
        plot.near_diagonal(6.0),
        plot.points.len(),
        plot.bottleneck_estimate(10).map(|e| e.mu_bps / 1e3)
    );
    out
}

fn fig8(a: &Args) -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "Figure 8: distribution of w_{n+1} - w_n + delta, delta = 20 ms",
    );
    let analysis = figure8_workload(a.span_secs, a.seed);
    if a.json {
        o!(
            out,
            "{}",
            serde_json::to_string(&analysis).expect("serializable analysis")
        );
    }
    let _ = write!(out, "{}", render_histogram(&analysis.histogram, 60));
    o!(
        out,
        "paper: peaks at P/mu (4.5 ms), delta (20 ms), then delta-independent\n\
         bulk positions; third peak => b_n = 488 bytes ~ one FTP packet"
    );
    for p in &analysis.peaks {
        o!(
            out,
            "measured peak at {:>6.1} ms  (height {:.3})  label {:?}  implied workload {:.0} B",
            p.position_ms,
            p.height,
            p.label,
            p.implied_workload_bytes
        );
    }
    if let Some(b) = analysis.inferred_bulk_bytes() {
        o!(
            out,
            "inferred bulk packet size: {b:.0} bytes (configured FTP size: 512)"
        );
    }
    out
}

fn fig9(a: &Args) -> String {
    let mut out = String::new();
    heading(&mut out, "Figure 9: same distribution at delta = 100 ms");
    let a8 = figure8_workload(a.span_secs, a.seed);
    let a9 = figure9_workload(a.span_secs, a.seed);
    let _ = write!(out, "{}", render_histogram(&a9.histogram, 60));
    // Long runs detect many micro-modes; print the structurally labeled
    // ones plus anything substantial.
    let max_h = a9.peaks.iter().map(|p| p.height).fold(0.0f64, f64::max);
    let mut shown = std::collections::HashSet::new();
    for p in &a9.peaks {
        let structural = p.label != PeakLabel::Other && shown.insert(format!("{:?}", p.label));
        if structural || p.height >= 0.1 * max_h {
            o!(
                out,
                "measured peak at {:>6.1} ms  (height {:.3})  label {:?}",
                p.position_ms,
                p.height,
                p.label
            );
        }
    }
    let h8 = a8.compressed_peak().map(|p| p.height).unwrap_or(0.0);
    let h9 = a9.compressed_peak().map(|p| p.height).unwrap_or(0.0);
    o!(
        out,
        "paper: the P/mu peak shrinks relative to Fig 8 (compression rarer as delta grows)"
    );
    o!(
        out,
        "measured: compressed-peak height {h8:.4} at delta=20 ms vs {h9:.4} at delta=100 ms"
    );
    let labels: Vec<PeakLabel> = a9.peaks.iter().map(|p| p.label).collect();
    o!(out, "labels at delta=100 ms: {labels:?}");
    out
}

fn table3(a: &Args) -> String {
    let mut out = String::new();
    heading(&mut out, "Table 3: ulp / clp / plg vs delta");
    let rows = table3_rows(a.span_secs, a.seed);
    o!(
        out,
        "paper (note: its '0.97' at delta=500 is an evident typo for ~0.07-0.10):"
    );
    o!(
        out,
        "| delta(ms) |      8 |     20 |     50 |    100 |    200 |    500 |"
    );
    o!(
        out,
        "| ulp       |   0.23 |   0.16 |   0.12 |   0.10 |   0.11 |  ~0.10 |"
    );
    o!(
        out,
        "| clp       |   0.60 |   0.42 |   0.27 |   0.18 |   0.18 |   0.09 |"
    );
    o!(
        out,
        "| plg       |    2.5 |    1.7 |    1.3 |    1.2 |    1.2 |    1.1 |"
    );
    o!(out, "measured:");
    let _ = write!(out, "{}", render_table3(&rows));
    if a.json {
        o!(
            out,
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable rows")
        );
    }
    // Shape notes.
    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    o!(
        out,
        "shape: ulp falls from {:.2} (probe util {:.0}%) to {:.2} (probe util {:.1}%); \
         clp >= ulp at small delta; plg -> ~1",
        first.ulp,
        first.probe_utilization * 100.0,
        last.ulp,
        last.probe_utilization * 100.0
    );
    // Randomness check at large delta (the paper's headline loss finding).
    let series = run_inria_umd(500, a.span_secs.max(240), a.seed);
    let loss = analyze_losses(&series);
    o!(
        out,
        "losses at delta=500 ms look random? {} (lag-1 chi^2 p = {:?})",
        loss.losses_look_random(0.01),
        loss.lag1_test.map(|t| t.p_value)
    );
    out
}

/// §6 cross-validation: the analytic batch-deterministic model vs. the
/// full multi-hop simulation, compared on the interarrival masses of
/// Figure 8 (the paper: the analytic results "show good correlation with
/// our experimental data" and "bring out the probe compression
/// phenomenon").
fn model(a: &Args) -> String {
    use probenet_queueing::{BatchModelSolver, BatchSizeDist, BolotModel};
    let mut out = String::new();
    heading(
        &mut out,
        "Section 6 model: analytic batch-deterministic queue vs simulation",
    );
    let sim = figure8_workload(a.span_secs, a.seed);
    // Fit a batch distribution to the simulated per-interval workloads:
    // probability of k FTP packets per 20 ms interval.
    let ftp_bits = 4096.0;
    let mut counts = [0usize; 6];
    for &b in &sim.workload_bytes {
        let k = ((b * 8.0 / ftp_bits).round() as usize).min(5);
        counts[k] += 1;
    }
    let total: usize = counts.iter().sum();
    let probs: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
    o!(
        out,
        "batch-size pmf measured from the simulation (k FTP packets/interval): {:?}",
        probs.iter().map(|p| format!("{p:.3}")).collect::<Vec<_>>()
    );
    let solver = BatchModelSolver::new(
        BolotModel::new(128_000.0, 576.0, 0.020, 0.140),
        0.010,
        BatchSizeDist::ftp_batches(ftp_bits, &probs),
    );
    let sol = solver.solve(5000);
    o!(
        out,
        "analytic solver: {} iterations to stationarity",
        sol.iterations
    );
    o!(
        out,
        "{:>26} | {:>10} | {:>10}",
        "interarrival mass near",
        "analytic",
        "simulated"
    );
    let sim_hist = &sim.histogram;
    let sim_total: u64 = sim_hist.total();
    let sim_mass = |x_ms: f64, tol_ms: f64| {
        let mut acc = 0u64;
        for (i, &c) in sim_hist.counts().iter().enumerate() {
            if (sim_hist.center(i) - x_ms).abs() <= tol_ms {
                acc += c;
            }
        }
        acc as f64 / sim_total as f64
    };
    for (label, x_ms) in [
        ("P/mu (4.5 ms, compression)", 4.5),
        ("delta (20 ms, undisturbed)", 20.0),
        ("1 FTP pkt (36.5 ms)", 36.5),
        ("2 FTP pkts (68.5 ms)", 68.5),
    ] {
        o!(
            out,
            "{label:>26} | {:>10.4} | {:>10.4}",
            sol.g_mass_near(x_ms / 1e3, 0.002),
            sim_mass(x_ms, 2.0)
        );
    }
    o!(
        out,
        "reading: the single-queue model concentrates mass on the exact\n\
         peak positions; the multi-hop simulation spreads each peak with\n\
         telnet-sized perturbations and return-path queueing, as the real\n\
         measurements did."
    );
    out
}

/// Multi-seed campaign: Table 3's headline metrics with the error bars the
/// paper's single runs could not provide.
fn campaign(a: &Args) -> String {
    use probenet_core::{campaign_matrix, PaperScenario};
    use probenet_sim::SimDuration;
    let mut out = String::new();
    heading(
        &mut out,
        "campaign: Table 3 metrics with across-seed spread (8 seeds)",
    );
    let seeds: Vec<u64> = (0..8).map(|i| a.seed.wrapping_add(i * 7919)).collect();
    o!(
        out,
        "{:>10} | {:>17} | {:>17} | {:>17}",
        "delta(ms)",
        "ulp (mean±std)",
        "clp (mean±std)",
        "min rtt (ms)"
    );
    // One flat δ × seed task list on the pool. As six sequential
    // `inria_umd_campaign` calls inside this one artifact, `campaign` was
    // the longest artifact of the harness by far (~640 of ~1470 serial ms)
    // and artifact-level scheduling could never split it, capping the
    // pooled/serial ratio near 1 on any machine.
    let deltas: Vec<SimDuration> = [8u64, 20, 50, 100, 200, 500]
        .iter()
        .map(|&d| SimDuration::from_millis(d))
        .collect();
    let rows = campaign_matrix(
        PaperScenario::inria_umd,
        &deltas,
        SimDuration::from_secs(a.span_secs.min(120)),
        &seeds,
    );
    for r in rows {
        let clp = r
            .clp
            .map(|c| format!("{:.3} ± {:.3}", c.mean, c.std))
            .unwrap_or_else(|| "-".into());
        o!(
            out,
            "{:>10} | {:>9.3} ± {:.3} | {:>17} | {:>8.1} ± {:.2}",
            r.delta_ms as u64,
            r.ulp.mean,
            r.ulp.std,
            clp,
            r.min_rtt_ms.mean,
            r.min_rtt_ms.std
        );
    }
    o!(
        out,
        "reading: the fixed component D is seed-stable to a fraction of a\n\
         millisecond; loss metrics carry sampling noise that single\n\
         10-minute runs (the paper's) cannot expose."
    );
    out
}

/// A named artifact renderer: figure/table name plus the function
/// producing its text report.
type Artifact = (&'static str, fn(&Args) -> String);

/// Every artifact, in the paper's presentation order.
const ARTIFACTS: &[Artifact] = &[
    ("table1", table1),
    ("table2", table2),
    ("fig1", fig1),
    ("fig2", fig2),
    ("fig4", fig4),
    ("fig5", fig5),
    ("fig6", fig6),
    ("fig8", fig8),
    ("fig9", fig9),
    ("table3", table3),
    ("model", model),
    ("campaign", campaign),
];

/// Render the selected artifacts on `threads` workers. Results come back
/// in `selected` order regardless of scheduling, so the printed report is
/// deterministic.
fn render_artifacts(
    args: &Args,
    selected: &[Artifact],
    threads: usize,
) -> Vec<(String, String, Duration)> {
    probenet_core::sched::par_map_threads(threads, selected.to_vec(), |(name, f)| {
        let started = Instant::now(); // probenet-lint: allow(wall-clock-in-sim, tainted-artifact-path) per-artifact wall-time report, not artifact data
        let text = f(args);
        (name.to_string(), text, started.elapsed())
    })
}

/// Proleptic-Gregorian civil date from days since 1970-01-01
/// (Howard Hinnant's `civil_from_days` algorithm).
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let month = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = yoe + era * 400 + i64::from(month <= 2);
    (year, month, day)
}

fn today_utc() -> String {
    let secs = SystemTime::now() // probenet-lint: allow(wall-clock-in-sim) BENCH_<date>.json filename stamp only
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

#[derive(Serialize)]
struct BenchArtifact {
    name: String,
    serial_ms: f64,
}

#[derive(Serialize)]
struct BenchEngine {
    events_processed: u64,
    /// Events over the *minimum* per-iteration engine wall time across
    /// `min_of_iters` warm runs. On the noisy single-core VM hosts this
    /// project is benchmarked on, a single run's wall clock carries ±10%
    /// of steal/frequency jitter; the minimum statistic is repeatable to
    /// a few tenths of a percent.
    events_per_sec: f64,
    min_of_iters: u64,
    peak_queue_depth: u64,
}

#[derive(Serialize)]
struct BenchReport {
    date: String,
    span_secs: u64,
    seed: u64,
    /// Physical parallelism reported by the host OS.
    host_cores: u64,
    /// Worker count the pool actually uses after applying the
    /// `PROBENET_THREADS` override (`probenet_sim::effective_threads`).
    threads_effective: u64,
    pool_threads: u64,
    artifacts: Vec<BenchArtifact>,
    serial_wall_ms: f64,
    parallel_wall_ms: f64,
    /// `null` on single-core hosts: with one core the pool degenerates to
    /// inline execution and the serial/pooled ratio only measures
    /// run-to-run variance (warm caches on the second pass), not parallel
    /// speedup — `parallelism_note` says so in the emitted JSON.
    speedup_parallel_over_serial: Option<f64>,
    parallelism_note: Option<String>,
    /// Collector ingest throughput across 8 concurrent sessions.
    stream_ingest: StreamIngest,
    engine: BenchEngine,
    /// Live reactor loopback engine at the committed `LIVE_BENCH_*`
    /// sizing; `None` when the platform lacks the epoll reactor (the note
    /// says why).
    live_engine: Option<LiveEngineRun>,
    live_engine_note: Option<String>,
    /// Deep-tier lint runtime over this workspace; `None` when the bench
    /// binary runs outside the repo checkout (no sources to analyze).
    lint_deep: Option<LintDeepRun>,
    /// Full-artifact serial wall time of this harness before the indexed
    /// event queue, engine reuse and pooled artifact scheduling landed,
    /// measured on the same host at span 120 s, seed 1993.
    pre_optimization_serial_wall_ms: f64,
    speedup_vs_pre_optimization: f64,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Iterations for the min-statistic engine measurement. Each δ = 50 ms
/// span-600 iteration is tens of milliseconds, so this stays cheap even
/// in CI while leaving plenty of samples for the minimum to stabilize.
const ENGINE_BENCH_ITERS: usize = 12;

/// Sizing of the `live_engine` measurement and its `--bench-gate` floor:
/// 256 concurrent δ = 20 ms loopback sessions, 50 probes each — about a
/// second of schedule (12.8 k probes) plus the straggler drain, cheap
/// enough for CI while still two orders of magnitude past one-socket,
/// one-thread probing on the same host.
const LIVE_BENCH_SESSIONS: usize = 256;
/// Probe interval of the `live_engine` measurement, ms.
const LIVE_BENCH_DELTA_MS: u64 = 20;
/// Probes per session of the `live_engine` measurement.
const LIVE_BENCH_COUNT: usize = 50;

/// Serial engine throughput on the representative δ = 50 ms INRIA→UMd
/// run: events over the minimum per-iteration engine wall across `iters`
/// warm runs (one discarded warm-up run first). The minimum filters out
/// VM steal/frequency noise that inflates any averaging statistic.
fn engine_throughput(span_secs: u64, seed: u64, iters: usize) -> BenchEngine {
    let scenario = probenet_core::PaperScenario::inria_umd(seed);
    let config =
        probenet_netdyn::ExperimentConfig::paper(probenet_sim::SimDuration::from_millis(50))
            .with_count((span_secs * 1000 / 50) as usize);
    scenario.run(&config); // warm-up: allocator pools, page cache
    let mut best = f64::INFINITY;
    let mut events = 0u64;
    let mut peak = 0u64;
    for _ in 0..iters.max(1) {
        let stats = scenario.run(&config).engine_stats;
        events = stats.events_processed;
        peak = stats.peak_queue_depth as u64;
        best = best.min(stats.wall.as_secs_f64());
    }
    BenchEngine {
        events_processed: events,
        events_per_sec: events as f64 / best,
        min_of_iters: iters.max(1) as u64,
        peak_queue_depth: peak,
    }
}

/// Deep-tier lint runtime (`cargo xtask lint --deep` run in-process
/// through the xtask library): the analyzer sits on the blocking CI path,
/// so its wall time is budgeted like any other tool on that path.
#[derive(serde::Serialize)]
struct LintDeepRun {
    /// Source files the analyzer read.
    files: u64,
    /// Functions in the workspace call graph.
    functions: u64,
    /// Resolved (deduplicated) call edges.
    call_edges: u64,
    /// End-to-end wall time: read + scrub + lex + call graph + taint BFS.
    wall_ms: f64,
}

/// Run the deep lint tier against the workspace rooted at the current
/// directory and time it end to end. Returns `None` (skip, not fail) when
/// the sources are not present — e.g. the binary run outside the repo
/// checkout, where there is nothing to analyze.
fn lint_deep_run() -> Option<LintDeepRun> {
    let started = Instant::now(); // probenet-lint: allow(wall-clock-in-sim) bench harness timing
    let files = xtask::read_workspace(std::path::Path::new(".")).ok()?;
    if files.is_empty() {
        return None;
    }
    let analysis = xtask::taint::analyze(&files);
    let wall = started.elapsed();
    assert!(
        analysis.violations.is_empty(),
        "deep lint must be clean when benched: {:?}",
        analysis.violations
    );
    Some(LintDeepRun {
        files: analysis.stats.files as u64,
        functions: analysis.stats.functions as u64,
        call_edges: analysis.stats.edges as u64,
        wall_ms: ms(wall),
    })
}

/// Committed engine-throughput floor for `--bench-gate`.
#[derive(serde::Deserialize)]
struct BenchBaseline {
    span_secs: u64,
    seed: u64,
    /// Min-statistic serial engine throughput committed after the event
    /// queue overhaul (see EXPERIMENTS.md for methodology).
    engine_events_per_sec: f64,
    /// Fractional drop tolerated before the gate fails (0.30 = 30%),
    /// sized for cross-host variance: CI runners and the development VM
    /// differ in absolute speed far more than any real regression hides.
    max_regression: f64,
    /// `live_engine` floor: aggregate probes/s the reactor must sustain
    /// at the committed `LIVE_BENCH_*` sizing. Schedule-bound (the sizing
    /// caps it at sessions/δ), so a shortfall means the reactor fell off
    /// pace, not that the host is slow.
    live_aggregate_pps: f64,
    /// Absolute wall-time box for the deep lint tier (`lint --deep`), in
    /// milliseconds. Unlike the throughput floors this is not a regression
    /// ratio: the taint pass is designed to stay near-linear in workspace
    /// size, so the budget is a hard ceiling sized far above the measured
    /// wall time — it trips on accidental complexity blowups (an unbounded
    /// taint frontier, quadratic call linking), not on runner speed.
    lint_deep_budget_ms: f64,
}

/// `--bench-gate`: re-measure serial engine throughput with the same
/// min-statistic methodology as `--bench-json` and fail (exit 1) if it
/// dropped more than `max_regression` below the committed baseline.
fn bench_gate() -> i32 {
    let path = "tests/bench_baseline.json";
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench-gate: cannot read {path}: {e}");
            return 2;
        }
    };
    let baseline: BenchBaseline = match serde_json::from_str(&body) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench-gate: cannot parse {path}: {e}");
            return 2;
        }
    };
    let engine = engine_throughput(baseline.span_secs, baseline.seed, ENGINE_BENCH_ITERS);
    let floor = baseline.engine_events_per_sec * (1.0 - baseline.max_regression);
    println!(
        "bench-gate: measured {:.2} M events/s (min of {} runs, span {} s, seed {}) \
         | baseline {:.2} M | floor {:.2} M",
        engine.events_per_sec / 1e6,
        engine.min_of_iters,
        baseline.span_secs,
        baseline.seed,
        baseline.engine_events_per_sec / 1e6,
        floor / 1e6,
    );
    let mut failed = false;
    if engine.events_per_sec < floor {
        println!(
            "bench-gate: FAIL — engine throughput regressed more than {:.0}% below {path}",
            baseline.max_regression * 100.0
        );
        failed = true;
    }
    // Live reactor pacing gate: the sizing is schedule-bound, so staying
    // above the floor proves the reactor kept its probes on schedule.
    match live_engine_run(LIVE_BENCH_SESSIONS, LIVE_BENCH_DELTA_MS, LIVE_BENCH_COUNT) {
        Err(e) => {
            // Missing epoll is a platform capability, not a regression.
            println!("bench-gate: live engine skipped ({e})");
        }
        Ok((run, _)) => {
            let live_floor = baseline.live_aggregate_pps * (1.0 - baseline.max_regression);
            println!(
                "bench-gate: live {:.0} probes/s over {} sessions | baseline {:.0} | floor {:.0}",
                run.aggregate_pps, run.sessions, baseline.live_aggregate_pps, live_floor,
            );
            if !run.accounting_balanced() {
                println!(
                    "bench-gate: FAIL — live drop accounting violated: produced {} != records {} + dropped {}",
                    run.produced, run.records, run.dropped
                );
                failed = true;
            }
            if run.aggregate_pps < live_floor {
                println!(
                    "bench-gate: FAIL — live probe rate regressed more than {:.0}% below {path}",
                    baseline.max_regression * 100.0
                );
                failed = true;
            }
        }
    }
    // Deep-lint runtime box: the analyzer rides the blocking CI path, so a
    // complexity regression fails here instead of silently stretching
    // every build from now on.
    match lint_deep_run() {
        None => println!("bench-gate: deep lint skipped (workspace sources not found)"),
        Some(lint) => {
            println!(
                "bench-gate: deep lint {:.0} ms over {} files / {} fns / {} edges | budget {:.0} ms",
                lint.wall_ms,
                lint.files,
                lint.functions,
                lint.call_edges,
                baseline.lint_deep_budget_ms,
            );
            if lint.wall_ms > baseline.lint_deep_budget_ms {
                println!(
                    "bench-gate: FAIL — deep lint exceeded its {:.0} ms budget in {path}",
                    baseline.lint_deep_budget_ms
                );
                failed = true;
            }
        }
    }
    if failed {
        1
    } else {
        println!("bench-gate: OK");
        0
    }
}

/// `repro live` — drive concurrent loopback probe sessions from the
/// single-threaded reactor against an in-process echo server and report
/// the sustained rate, timer-wheel lateness and the stream-collector
/// drop-accounting identity. Exits 1 if `produced != records + dropped`,
/// 2 when the platform lacks the reactor (no epoll).
fn live_cmd(a: &Args) -> i32 {
    let count = usize::try_from((a.live_duration_secs * 1000) / a.live_delta_ms.max(1))
        .expect("probe count fits usize")
        .max(1);
    let (run, report) = match live_engine_run(a.live_sessions, a.live_delta_ms, count) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("live: reactor unavailable: {e}");
            return 2;
        }
    };
    let balanced = run.accounting_balanced();
    if a.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&run).expect("serializable live report")
        );
    } else {
        println!(
            "=== live reactor: {} sessions, δ = {} ms, {} probes/session ===",
            run.sessions, run.delta_ms, run.probes_per_session
        );
        println!(
            "lanes {} | wall {:.0} ms | {:.0} probes/s aggregate | {} sessions/core",
            run.lanes, run.wall_ms, run.aggregate_pps, run.sessions_per_core
        );
        println!(
            "timer lateness µs: p50 {} | p90 {} | p99 {} | max {} ({} fires)",
            run.lateness_p50_us,
            run.lateness_p90_us,
            run.lateness_p99_us,
            run.lateness_max_us,
            run.timers_fired
        );
        println!(
            "io: {} probes sent, {} replies, batched syscalls {}",
            run.probes_sent,
            run.replies_received,
            if run.used_batching {
                "yes"
            } else {
                "no (fallback ladder)"
            }
        );
        println!(
            "stream accounting: produced {} = records {} + dropped {} [{}]",
            run.produced,
            run.records,
            run.dropped,
            if balanced { "ok" } else { "FAIL" }
        );
    }
    if a.stream {
        println!("{}", report.to_json());
    }
    if !balanced {
        eprintln!(
            "live: drop accounting violated: produced {} != records {} + dropped {}",
            run.produced, run.records, run.dropped
        );
        return 1;
    }
    0
}

/// Time a serial and a pooled full-artifact pass and write
/// `BENCH_<date>.json`. Artifact *outputs* are discarded here — this mode
/// only measures.
fn bench(args: &Args) {
    let threads = probenet_core::sched::max_threads();
    let serial_started = Instant::now(); // probenet-lint: allow(wall-clock-in-sim) bench harness timing
    let serial = render_artifacts(args, ARTIFACTS, 1);
    let serial_wall = serial_started.elapsed();

    let parallel_started = Instant::now(); // probenet-lint: allow(wall-clock-in-sim) bench harness timing
    let parallel = render_artifacts(args, ARTIFACTS, threads);
    let parallel_wall = parallel_started.elapsed();
    // Pool scheduling must never change the report.
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.1, p.1, "artifact {} differs between serial and pool", s.0);
    }

    // Engine throughput, measured on a representative δ = 50 ms run.
    let engine = engine_throughput(args.span_secs, args.seed, ENGINE_BENCH_ITERS);

    // Streaming ingest: 8 producer sessions through one collector, blocking
    // push, so the drop counter is structurally (and assertedly) zero.
    let ingest = stream_ingest_throughput(8, 150_000);

    // Live reactor: concurrent loopback sessions from one reactor thread,
    // streamed into one collector over bounded rings.
    let (live_engine, live_engine_note) =
        match live_engine_run(LIVE_BENCH_SESSIONS, LIVE_BENCH_DELTA_MS, LIVE_BENCH_COUNT) {
            Ok((run, _)) => {
                assert!(
                    run.accounting_balanced(),
                    "live drop accounting violated: produced {} != records {} + dropped {}",
                    run.produced,
                    run.records,
                    run.dropped
                );
                (Some(run), None)
            }
            Err(e) => (None, Some(format!("live reactor unavailable: {e}"))),
        };

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as u64;
    let (speedup, note) = if host_cores == 1 {
        (
            None,
            Some(
                "single-core host: the pool degenerates to inline execution, so a \
                 serial/pooled wall ratio would measure cache warmth, not speedup"
                    .to_string(),
            ),
        )
    } else {
        (Some(ms(serial_wall) / ms(parallel_wall)), None)
    };
    let report = BenchReport {
        date: today_utc(),
        span_secs: args.span_secs,
        seed: args.seed,
        host_cores,
        threads_effective: probenet_sim::effective_threads() as u64,
        pool_threads: threads as u64,
        artifacts: serial
            .iter()
            .map(|(name, _, wall)| BenchArtifact {
                name: name.clone(),
                serial_ms: ms(*wall),
            })
            .collect(),
        serial_wall_ms: ms(serial_wall),
        parallel_wall_ms: ms(parallel_wall),
        speedup_parallel_over_serial: speedup,
        parallelism_note: note,
        stream_ingest: ingest,
        engine,
        live_engine,
        live_engine_note,
        lint_deep: lint_deep_run(),
        pre_optimization_serial_wall_ms: PRE_OPTIMIZATION_SERIAL_WALL_MS,
        speedup_vs_pre_optimization: PRE_OPTIMIZATION_SERIAL_WALL_MS / ms(serial_wall),
    };
    let path = format!("BENCH_{}.json", report.date);
    let body = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&path, body.as_bytes()).expect("write bench report");
    println!("wrote {path}");
    println!(
        "serial {:.0} ms | pool({}) {:.0} ms | engine {:.2} M events/s | {:.1}x vs pre-optimization ({:.0} ms)",
        ms(serial_wall),
        threads,
        ms(parallel_wall),
        report.engine.events_per_sec / 1e6,
        report.speedup_vs_pre_optimization,
        PRE_OPTIMIZATION_SERIAL_WALL_MS,
    );
    println!(
        "stream ingest: {:.2} M records/s aggregate over {} sessions ({:.0} k records/s per session, {} dropped)",
        report.stream_ingest.aggregate_records_per_sec / 1e6,
        report.stream_ingest.sessions,
        report.stream_ingest.per_session_records_per_sec / 1e3,
        report.stream_ingest.dropped,
    );
    match (&report.live_engine, &report.live_engine_note) {
        (Some(live), _) => println!(
            "live engine: {} sessions/core, {:.0} probes/s aggregate, lateness p99 {} µs (max {} µs)",
            live.sessions_per_core, live.aggregate_pps, live.lateness_p99_us, live.lateness_max_us,
        ),
        (None, note) => println!(
            "live engine: skipped ({})",
            note.as_deref().unwrap_or("unavailable")
        ),
    }
    if let Some(lint) = &report.lint_deep {
        println!(
            "deep lint: {:.0} ms over {} files ({} fns, {} edges)",
            lint.wall_ms, lint.files, lint.functions, lint.call_edges
        );
    }
}

/// Measured once on the development host (single core) at span 120 s,
/// seed 1993, before the perf work: binary-heap event queue, fresh engine
/// allocations per run, strictly sequential artifacts.
const PRE_OPTIMIZATION_SERIAL_WALL_MS: f64 = 3786.0;

/// `--impair <scenario>`: run a named fault-injection scenario at the two
/// paper regimes and print its loss/ordering signature. `--impair list`
/// enumerates the scenarios. Exit code doubles as the process status.
fn impair(a: &Args, name: &str) -> i32 {
    if name == "list" {
        println!("named impairment scenarios:");
        for sc in impairment_scenarios() {
            println!("  {:<22} {}", sc.name, sc.summary);
        }
        return 0;
    }
    // Slices scale with --span-secs; the default span renders exactly the
    // golden (8 ms, 60 s) and (500 ms, 300 s) slices.
    let base = a.span_secs.min(60);
    let slices = [(8u64, base), (500u64, base * 5)];
    let threads = if a.serial {
        1
    } else {
        probenet_core::sched::max_threads()
    };
    let Some(report) = impair_report(name, a.seed, &slices, threads) else {
        eprintln!("unknown impairment scenario: {name} (try --impair list)");
        return 2;
    };
    if a.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serializable impair report")
        );
        return 0;
    }
    let summary = impairment_scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .map(|s| s.summary)
        .unwrap_or("");
    println!("=== impairment scenario: {name} ===");
    println!("{summary}");
    println!("seed {}", report.seed);
    for s in &report.slices {
        println!(
            "delta {:>4} ms over {:>4} s: sent {}, delivered {}, ulp {:.4}, clp {}, plg {}",
            s.delta_ms,
            s.span_secs,
            s.sent,
            s.received,
            s.ulp,
            s.clp
                .map(|c| format!("{c:.4}"))
                .unwrap_or_else(|| "-".into()),
            s.plg_palm
                .map(|g| format!("{g:.2}"))
                .unwrap_or_else(|| "-".into()),
        );
        println!(
            "  losses look random? {} | loss runs {:?} | reordering {} | impair drops {} | records fnv1a {}",
            s.losses_look_random, s.run_lengths, s.reordering, s.probe_impair_drops, s.records_fnv1a
        );
    }
    0
}

/// `--stream`: regenerate the streaming-collector golden snapshots —
/// serially and on the pool — verify both renderings are byte-identical,
/// then print them, diff them against `tests/golden/stream-snapshots.json`
/// (`--check`), or rewrite that artifact (`--bless`).
///
/// The same report also backs the fleet artifacts: its sessions are split
/// round-robin across [`GOLDEN_FRAME_SHARDS`] simulated collectors and
/// encoded as snapshot-frame streams. `--bless` writes those shards next
/// to the JSON golden; `--check` re-encodes and diffs them, then folds the
/// *on-disk* shards through `probenet-merged` and requires the folded
/// report to be byte-identical to the single-process rendering;
/// `--emit-frames <prefix>` writes the shards to `<prefix>-c<i>.bin`.
fn stream_cmd(a: &Args) -> i32 {
    let threads = if a.serial {
        1
    } else {
        probenet_core::sched::max_threads()
    };
    let report = stream_collector_report(1);
    let mut serial = report.to_json();
    serial.push('\n');
    let pooled = stream_report_threads(threads);
    if serial != pooled {
        println!("stream: FAIL — pool({threads}) report differs from serial");
        return 1;
    }
    let shards = frame_shards(&report, GOLDEN_FRAME_SHARDS);
    if let Some(prefix) = &a.emit_frames {
        for (i, shard) in shards.iter().enumerate() {
            let path = format!("{prefix}-c{i}.bin");
            std::fs::write(&path, shard).expect("write frame shard");
            println!("stream: wrote {path} ({} bytes)", shard.len());
        }
    }
    let path = stream_golden_path();
    if a.bless {
        std::fs::write(&path, serial.as_bytes()).expect("write stream golden");
        println!("stream: blessed {path}");
        for (i, shard) in shards.iter().enumerate() {
            let shard_path = stream_frames_path(i);
            std::fs::write(&shard_path, shard).expect("write golden frame shard");
            println!("stream: blessed {shard_path} ({} bytes)", shard.len());
        }
        return 0;
    }
    if a.check {
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == serial => println!("stream: OK ({path})"),
            Ok(_) => {
                println!(
                    "stream: MISMATCH against {path} — behavior drifted; \
                     rerun with --stream --bless if the change is intended"
                );
                return 1;
            }
            Err(e) => {
                println!("stream: cannot read {path}: {e}");
                return 1;
            }
        }
        let shard_paths: Vec<String> = (0..GOLDEN_FRAME_SHARDS).map(stream_frames_path).collect();
        for (shard, shard_path) in shards.iter().zip(&shard_paths) {
            match std::fs::read(shard_path) {
                Ok(golden) if &golden == shard => println!("stream: OK ({shard_path})"),
                Ok(_) => {
                    println!(
                        "stream: MISMATCH against {shard_path} — frame encoding drifted; \
                         rerun with --stream --bless if the change is intended"
                    );
                    return 1;
                }
                Err(e) => {
                    println!("stream: cannot read {shard_path}: {e}");
                    return 1;
                }
            }
        }
        // The fleet-merge determinism contract: folding the checked-in
        // shards must reproduce the single-process report byte-for-byte.
        let merged = match probenet_merged::merge_files(&shard_paths) {
            Ok(r) => r,
            Err(e) => {
                println!("stream: FAIL — merging golden frame shards: {e}");
                return 1;
            }
        };
        let mut merged_json = merged.to_json();
        merged_json.push('\n');
        if merged_json != serial {
            println!(
                "stream: FAIL — report merged from golden frame shards differs \
                 from the single-process report"
            );
            return 1;
        }
        println!(
            "stream: OK (merged {} frame shards byte-identical to single-process report)",
            shard_paths.len()
        );
        return 0;
    }
    print!("{serial}");
    0
}

/// `repro merge <frames.bin>...`: fold collector frame files through the
/// fleet merge service and print the report — or diff it against the
/// streaming golden (`--check`) / rewrite that golden (`--bless`).
fn merge_cmd(a: &Args, files: &[String]) -> i32 {
    if files.is_empty() {
        eprintln!("repro merge: needs at least one frame file");
        return 2;
    }
    let report = match probenet_merged::merge_files(files) {
        Ok(r) => r,
        Err(e) => {
            println!("merge: FAIL — {e}");
            return 1;
        }
    };
    let mut rendered = report.to_json();
    rendered.push('\n');
    let path = stream_golden_path();
    if a.bless {
        std::fs::write(&path, rendered.as_bytes()).expect("write stream golden");
        println!("merge: blessed {path}");
        return 0;
    }
    if a.check {
        return match std::fs::read_to_string(&path) {
            Ok(golden) if golden == rendered => {
                println!("merge: OK — folded report matches {path}");
                0
            }
            Ok(_) => {
                println!("merge: MISMATCH — folded report differs from {path}");
                1
            }
            Err(e) => {
                println!("merge: cannot read {path}: {e}");
                1
            }
        };
    }
    print!("{rendered}");
    0
}

/// `repro mesh`: run the golden mesh campaign — serially and on the
/// pool, requiring byte-identical reports — and print the artifact,
/// diff it against `tests/golden/mesh-report.json` (`--check`), or
/// rewrite that golden (`--bless`).
///
/// Before touching the mesh golden, the degenerate contract is enforced:
/// a 2-host mesh is the single-path pipeline, so the mesh crate's
/// degenerate campaign over the streaming golden sessions must render
/// byte-identically to the `--stream` report, and splitting it into
/// [`GOLDEN_FRAME_SHARDS`] streams and folding them back through the
/// merge daemon's incremental reader must reproduce it again, with the
/// staging buffer bounded by the largest single frame.
fn mesh_cmd(a: &Args) -> i32 {
    use probenet_mesh::{DegenerateSpec, MeshReport, MeshSpec};

    let threads = if a.serial {
        1
    } else {
        probenet_core::sched::max_threads()
    };

    // Degenerate 2-host contract against the single-path pipeline.
    let degenerate = probenet_mesh::degenerate_report(
        &DegenerateSpec {
            scenario: GOLDEN_SCENARIO.to_string(),
            tasks: stream_session_tasks(),
        },
        threads,
    );
    let mut degenerate_json = degenerate.to_json();
    degenerate_json.push('\n');
    let mut single_path = stream_collector_report(1).to_json();
    single_path.push('\n');
    if degenerate_json != single_path {
        println!("mesh: FAIL — degenerate campaign differs from the single-path --stream report");
        return 1;
    }
    let (folded, peak) = match probenet_mesh::fold_through_daemon(&degenerate, GOLDEN_FRAME_SHARDS)
    {
        Ok(r) => r,
        Err(e) => {
            println!("mesh: FAIL — folding degenerate frames: {e}");
            return 1;
        }
    };
    let mut folded_json = folded.to_json();
    folded_json.push('\n');
    if folded_json != degenerate_json {
        println!("mesh: FAIL — daemon fold of degenerate frames differs from its input");
        return 1;
    }
    println!(
        "mesh: degenerate 2-host campaign byte-identical to --stream \
         (fold peak buffer {peak} bytes)"
    );

    // The mesh campaign proper, serial vs pooled.
    let spec = MeshSpec::golden();
    let serial = match MeshReport::generate(&spec, 1) {
        Ok(r) => r.to_json(),
        Err(e) => {
            println!("mesh: FAIL — serial campaign: {e}");
            return 1;
        }
    };
    let pooled = match MeshReport::generate(&spec, threads) {
        Ok(r) => r.to_json(),
        Err(e) => {
            println!("mesh: FAIL — pooled campaign: {e}");
            return 1;
        }
    };
    if serial != pooled {
        println!("mesh: FAIL — pool({threads}) report differs from serial");
        return 1;
    }

    let path = mesh_golden_path();
    if a.bless {
        std::fs::write(&path, serial.as_bytes()).expect("write mesh golden");
        println!("mesh: blessed {path}");
        return 0;
    }
    if a.check {
        return match std::fs::read_to_string(&path) {
            Ok(golden) if golden == serial => {
                println!("mesh: OK ({path})");
                0
            }
            Ok(_) => {
                println!(
                    "mesh: MISMATCH against {path} — behavior drifted; \
                     rerun with mesh --bless if the change is intended"
                );
                1
            }
            Err(e) => {
                println!("mesh: cannot read {path}: {e}");
                1
            }
        };
    }
    print!("{serial}");
    0
}

/// `--check` / `--bless`: regenerate the golden reports for the pinned
/// seeds — serially and on the pool — and diff them byte-for-byte against
/// `tests/golden/` (or, under `--bless`, rewrite the checked-in files).
fn check_goldens(bless: bool) -> i32 {
    let threads = probenet_core::sched::max_threads();
    let mut failed = false;
    for seed in GOLDEN_SEEDS {
        let path = golden_path(seed);
        let serial = golden_report(seed);
        let pooled = golden_report_threads(seed, threads);
        if serial != pooled {
            println!("seed {seed}: FAIL — pool({threads}) rendering differs from serial");
            failed = true;
            continue;
        }
        if bless {
            std::fs::write(&path, serial.as_bytes()).expect("write golden trace");
            println!("seed {seed}: blessed {path}");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == serial => println!("seed {seed}: OK ({path})"),
            Ok(_) => {
                println!(
                    "seed {seed}: MISMATCH against {path} — behavior drifted; \
                     rerun with --bless if the change is intended"
                );
                failed = true;
            }
            Err(e) => {
                println!("seed {seed}: cannot read {path}: {e}");
                failed = true;
            }
        }
    }
    i32::from(failed)
}

fn main() {
    let args = parse_args();
    if let Some(files) = args.merge.clone() {
        std::process::exit(merge_cmd(&args, &files));
    }
    if args.mesh {
        std::process::exit(mesh_cmd(&args));
    }
    if args.live {
        std::process::exit(live_cmd(&args));
    }
    if args.stream {
        std::process::exit(stream_cmd(&args));
    }
    if args.check || args.bless {
        std::process::exit(check_goldens(args.bless));
    }
    if let Some(name) = args.impair.clone() {
        std::process::exit(impair(&args, &name));
    }
    if args.bench_gate {
        std::process::exit(bench_gate());
    }
    if args.bench_json {
        bench(&args);
        return;
    }
    let run_all = args.artifact == "all";
    let selected: Vec<Artifact> = ARTIFACTS
        .iter()
        .filter(|(name, _)| run_all || args.artifact == *name)
        .copied()
        .collect();
    if selected.is_empty() {
        eprintln!("unknown artifact: {}", args.artifact);
        std::process::exit(2);
    }

    println!(
        "probenet repro harness | span {} s per experiment | seed {}",
        args.span_secs, args.seed
    );
    let threads = if args.serial {
        1
    } else {
        probenet_core::sched::max_threads()
    };
    for (_, text, _) in render_artifacts(&args, &selected, threads) {
        print!("{text}");
    }
}
