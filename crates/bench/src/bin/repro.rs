//! `repro` — regenerate every table and figure of Bolot, SIGCOMM '93.
//!
//! ```text
//! repro [--artifact all|table1|table2|table3|fig1|fig2|fig4|fig5|fig6|fig8|fig9]
//!       [--span-secs N] [--seed N] [--json]
//! ```
//!
//! Each artifact prints the paper's reported values next to the measured
//! ones, plus a terminal rendering of the figure. `--json` additionally
//! emits machine-readable results on stdout.
//!
//! Figures 3 and 7 of the paper are schematics (the queueing model and the
//! Lindley proof), realized as code in `probenet_queueing::{BolotModel,
//! lindley}` and covered by that crate's tests.

use probenet_bench::*;
use probenet_core::{
    analyze_losses, render_histogram, render_phase_plot, render_table3, render_time_series,
    PeakLabel,
};

struct Args {
    artifact: String,
    span_secs: u64,
    seed: u64,
    json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        artifact: "all".to_string(),
        span_secs: DEFAULT_SPAN_SECS,
        seed: 1993,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--artifact" => args.artifact = it.next().expect("--artifact needs a value"),
            "--span-secs" => {
                args.span_secs = it
                    .next()
                    .expect("--span-secs needs a value")
                    .parse()
                    .expect("span must be an integer")
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed must be an integer")
            }
            "--json" => args.json = true,
            "--help" | "-h" => {
                println!(
                    "repro [--artifact all|table1|table2|table3|fig1|fig2|fig4|fig5|fig6|fig8|fig9|model|campaign] \
                     [--span-secs N] [--seed N] [--json]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn heading(s: &str) {
    println!("\n=== {s} ===");
}

fn table1() {
    heading("Table 1: route INRIA -> UMd (July 1992)");
    println!("paper: 10 hops, transatlantic bottleneck between nodes 4 and 5");
    for (i, n) in table1_route().iter().enumerate() {
        println!("{:>3}  {n}", i + 1);
    }
}

fn table2() {
    heading("Table 2: route UMd -> Pittsburgh (May 1993)");
    println!("paper: 13 hops over the T3 ANSnet backbone");
    for (i, n) in table2_route().iter().enumerate() {
        println!("{:>3}  {n}", i + 1);
    }
}

fn fig1(a: &Args) {
    heading("Figure 1: rtt_n vs n, delta = 50 ms");
    let series = figure1_series(a.span_secs, a.seed);
    if a.json {
        println!(
            "{}",
            serde_json::to_string(&series).expect("serializable series")
        );
    }
    let strip: Vec<f64> = series.rtt_or_zero_ms().into_iter().take(800).collect();
    print!("{}", render_time_series(&strip, 100, 18));
    println!(
        "paper: loss probability 9% for this experiment | measured: {:.1}% over {} probes",
        series.loss_probability() * 100.0,
        series.len()
    );
}

fn fig2(a: &Args) {
    heading("Figure 2: phase plot, delta = 50 ms (INRIA-UMd)");
    let (plot, loss) = figure2_phase(a.span_secs, a.seed);
    if a.json {
        println!(
            "{}",
            serde_json::to_string(&plot).expect("serializable plot")
        );
    }
    print!("{}", render_phase_plot(&plot, 72, 24));
    println!(
        "paper: D ~ 140 ms | measured min rtt (D + P/mu): {:.1} ms",
        plot.min_rtt_ms().unwrap_or(f64::NAN)
    );
    match plot.bottleneck_estimate(10) {
        Some(est) => {
            println!("paper: compression-line x-intercept ~48 ms => mu ~ 130 kb/s (with P = 32 B)");
            println!(
                "measured: intercept {:.1} ms, mu = {:.1} kb/s (P = 72 B wire), {} points on the line",
                est.intercept_ms,
                est.mu_bps / 1e3,
                est.compression_points
            );
            println!(
                "clock-resolution bounds: [{:.0}, {:.0}] kb/s (3.906 ms DECstation clock); \
                 configured truth: 128.0 kb/s",
                est.mu_lo_bps / 1e3,
                est.mu_hi_bps / 1e3
            );
        }
        None => println!("measured: no compression line detected"),
    }
    println!("losses in this run: ulp {:.2}", loss.ulp);
}

fn fig4(a: &Args) {
    heading("Figure 4: phase plot, delta = 500 ms (INRIA-UMd)");
    let plot = figure4_phase(a.span_secs.max(240), a.seed);
    if a.json {
        println!(
            "{}",
            serde_json::to_string(&plot).expect("serializable plot")
        );
    }
    print!("{}", render_phase_plot(&plot, 72, 24));
    let offset = -(500.0 - 72.0 * 8.0 / 128.0); // P/mu - delta, ms
    let on_line = plot.near_line(offset, 2.0);
    println!("paper: only 2 points on the compression line; scatter around the diagonal");
    println!(
        "measured: {} points near the line y = x {:.0} ms, {} of {} near the diagonal (+-10 ms)",
        on_line,
        offset,
        plot.near_diagonal(10.0),
        plot.points.len()
    );
    println!(
        "compression-line detector: {:?}",
        plot.bottleneck_estimate(10).map(|e| e.mu_bps)
    );
}

fn fig5(a: &Args) {
    heading("Figure 5: phase plot, delta = 8 ms (UMd-Pitt, 3 ms clock)");
    let plot = figure5_phase(a.span_secs, a.seed);
    if a.json {
        println!(
            "{}",
            serde_json::to_string(&plot).expect("serializable plot")
        );
    }
    print!("{}", render_phase_plot(&plot, 72, 24));
    println!("paper: lines y = x and y = x - 8 visible; clock-resolution banding");
    println!(
        "measured: {} points near diagonal (+-1.5 ms), {} near y = x - 8 (+-1.5 ms), {} total",
        plot.near_diagonal(1.5),
        plot.near_line(-8.0, 1.5),
        plot.points.len()
    );
}

fn fig6(a: &Args) {
    heading("Figure 6: phase plot, delta = 50 ms (UMd-Pitt, 3 ms clock)");
    let plot = figure6_phase(a.span_secs, a.seed);
    if a.json {
        println!(
            "{}",
            serde_json::to_string(&plot).expect("serializable plot")
        );
    }
    print!("{}", render_phase_plot(&plot, 72, 24));
    println!("paper: scatter around the diagonal (no compression at 50 ms)");
    println!(
        "measured: {} of {} points near the diagonal (+-6 ms); detector: {:?}",
        plot.near_diagonal(6.0),
        plot.points.len(),
        plot.bottleneck_estimate(10).map(|e| e.mu_bps / 1e3)
    );
}

fn fig8(a: &Args) {
    heading("Figure 8: distribution of w_{n+1} - w_n + delta, delta = 20 ms");
    let analysis = figure8_workload(a.span_secs, a.seed);
    if a.json {
        println!(
            "{}",
            serde_json::to_string(&analysis).expect("serializable analysis")
        );
    }
    print!("{}", render_histogram(&analysis.histogram, 60));
    println!(
        "paper: peaks at P/mu (4.5 ms), delta (20 ms), then delta-independent\n\
         bulk positions; third peak => b_n = 488 bytes ~ one FTP packet"
    );
    for p in &analysis.peaks {
        println!(
            "measured peak at {:>6.1} ms  (height {:.3})  label {:?}  implied workload {:.0} B",
            p.position_ms, p.height, p.label, p.implied_workload_bytes
        );
    }
    if let Some(b) = analysis.inferred_bulk_bytes() {
        println!("inferred bulk packet size: {b:.0} bytes (configured FTP size: 512)");
    }
}

fn fig9(a: &Args) {
    heading("Figure 9: same distribution at delta = 100 ms");
    let a8 = figure8_workload(a.span_secs, a.seed);
    let a9 = figure9_workload(a.span_secs, a.seed);
    print!("{}", render_histogram(&a9.histogram, 60));
    // Long runs detect many micro-modes; print the structurally labeled
    // ones plus anything substantial.
    let max_h = a9.peaks.iter().map(|p| p.height).fold(0.0f64, f64::max);
    let mut shown = std::collections::HashSet::new();
    for p in &a9.peaks {
        let structural = p.label != PeakLabel::Other && shown.insert(format!("{:?}", p.label));
        if structural || p.height >= 0.1 * max_h {
            println!(
                "measured peak at {:>6.1} ms  (height {:.3})  label {:?}",
                p.position_ms, p.height, p.label
            );
        }
    }
    let h8 = a8.compressed_peak().map(|p| p.height).unwrap_or(0.0);
    let h9 = a9.compressed_peak().map(|p| p.height).unwrap_or(0.0);
    println!("paper: the P/mu peak shrinks relative to Fig 8 (compression rarer as delta grows)");
    println!("measured: compressed-peak height {h8:.4} at delta=20 ms vs {h9:.4} at delta=100 ms");
    let labels: Vec<PeakLabel> = a9.peaks.iter().map(|p| p.label).collect();
    println!("labels at delta=100 ms: {labels:?}");
}

fn table3(a: &Args) {
    heading("Table 3: ulp / clp / plg vs delta");
    let rows = table3_rows(a.span_secs, a.seed);
    println!("paper (note: its '0.97' at delta=500 is an evident typo for ~0.07-0.10):");
    println!("| delta(ms) |      8 |     20 |     50 |    100 |    200 |    500 |");
    println!("| ulp       |   0.23 |   0.16 |   0.12 |   0.10 |   0.11 |  ~0.10 |");
    println!("| clp       |   0.60 |   0.42 |   0.27 |   0.18 |   0.18 |   0.09 |");
    println!("| plg       |    2.5 |    1.7 |    1.3 |    1.2 |    1.2 |    1.1 |");
    println!("measured:");
    print!("{}", render_table3(&rows));
    if a.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&rows).expect("serializable rows")
        );
    }
    // Shape notes.
    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    println!(
        "shape: ulp falls from {:.2} (probe util {:.0}%) to {:.2} (probe util {:.1}%); \
         clp >= ulp at small delta; plg -> ~1",
        first.ulp,
        first.probe_utilization * 100.0,
        last.ulp,
        last.probe_utilization * 100.0
    );
    // Randomness check at large delta (the paper's headline loss finding).
    let series = run_inria_umd(500, a.span_secs.max(240), a.seed);
    let loss = analyze_losses(&series);
    println!(
        "losses at delta=500 ms look random? {} (lag-1 chi^2 p = {:?})",
        loss.losses_look_random(0.01),
        loss.lag1_test.map(|t| t.p_value)
    );
}

/// §6 cross-validation: the analytic batch-deterministic model vs. the
/// full multi-hop simulation, compared on the interarrival masses of
/// Figure 8 (the paper: the analytic results "show good correlation with
/// our experimental data" and "bring out the probe compression
/// phenomenon").
fn model(a: &Args) {
    use probenet_queueing::{BatchModelSolver, BatchSizeDist, BolotModel};
    heading("Section 6 model: analytic batch-deterministic queue vs simulation");
    let sim = figure8_workload(a.span_secs, a.seed);
    // Fit a batch distribution to the simulated per-interval workloads:
    // probability of k FTP packets per 20 ms interval.
    let ftp_bits = 4096.0;
    let mut counts = [0usize; 6];
    for &b in &sim.workload_bytes {
        let k = ((b * 8.0 / ftp_bits).round() as usize).min(5);
        counts[k] += 1;
    }
    let total: usize = counts.iter().sum();
    let probs: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
    println!(
        "batch-size pmf measured from the simulation (k FTP packets/interval): {:?}",
        probs.iter().map(|p| format!("{p:.3}")).collect::<Vec<_>>()
    );
    let solver = BatchModelSolver::new(
        BolotModel::new(128_000.0, 576.0, 0.020, 0.140),
        0.010,
        BatchSizeDist::ftp_batches(ftp_bits, &probs),
    );
    let sol = solver.solve(5000);
    println!(
        "analytic solver: {} iterations to stationarity",
        sol.iterations
    );
    println!(
        "{:>26} | {:>10} | {:>10}",
        "interarrival mass near", "analytic", "simulated"
    );
    let sim_hist = &sim.histogram;
    let sim_total: u64 = sim_hist.total();
    let sim_mass = |x_ms: f64, tol_ms: f64| {
        let mut acc = 0u64;
        for (i, &c) in sim_hist.counts().iter().enumerate() {
            if (sim_hist.center(i) - x_ms).abs() <= tol_ms {
                acc += c;
            }
        }
        acc as f64 / sim_total as f64
    };
    for (label, x_ms) in [
        ("P/mu (4.5 ms, compression)", 4.5),
        ("delta (20 ms, undisturbed)", 20.0),
        ("1 FTP pkt (36.5 ms)", 36.5),
        ("2 FTP pkts (68.5 ms)", 68.5),
    ] {
        println!(
            "{label:>26} | {:>10.4} | {:>10.4}",
            sol.g_mass_near(x_ms / 1e3, 0.002),
            sim_mass(x_ms, 2.0)
        );
    }
    println!(
        "reading: the single-queue model concentrates mass on the exact\n\
         peak positions; the multi-hop simulation spreads each peak with\n\
         telnet-sized perturbations and return-path queueing, as the real\n\
         measurements did."
    );
}

/// Multi-seed campaign: Table 3's headline metrics with the error bars the
/// paper's single runs could not provide.
fn campaign(a: &Args) {
    use probenet_core::inria_umd_campaign;
    use probenet_sim::SimDuration;
    heading("campaign: Table 3 metrics with across-seed spread (8 seeds)");
    let seeds: Vec<u64> = (0..8).map(|i| a.seed.wrapping_add(i * 7919)).collect();
    println!(
        "{:>10} | {:>17} | {:>17} | {:>17}",
        "delta(ms)", "ulp (mean±std)", "clp (mean±std)", "min rtt (ms)"
    );
    for delta_ms in [8u64, 20, 50, 100, 200, 500] {
        let r = inria_umd_campaign(
            SimDuration::from_millis(delta_ms),
            SimDuration::from_secs(a.span_secs.min(120)),
            &seeds,
        );
        let clp = r
            .clp
            .map(|c| format!("{:.3} ± {:.3}", c.mean, c.std))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>10} | {:>9.3} ± {:.3} | {:>17} | {:>8.1} ± {:.2}",
            delta_ms, r.ulp.mean, r.ulp.std, clp, r.min_rtt_ms.mean, r.min_rtt_ms.std
        );
    }
    println!(
        "reading: the fixed component D is seed-stable to a fraction of a\n\
         millisecond; loss metrics carry sampling noise that single\n\
         10-minute runs (the paper's) cannot expose."
    );
}

fn main() {
    let args = parse_args();
    let run_all = args.artifact == "all";
    let is = |n: &str| run_all || args.artifact == n;

    println!(
        "probenet repro harness | span {} s per experiment | seed {}",
        args.span_secs, args.seed
    );
    if is("table1") {
        table1();
    }
    if is("table2") {
        table2();
    }
    if is("fig1") {
        fig1(&args);
    }
    if is("fig2") {
        fig2(&args);
    }
    if is("fig4") {
        fig4(&args);
    }
    if is("fig5") {
        fig5(&args);
    }
    if is("fig6") {
        fig6(&args);
    }
    if is("fig8") {
        fig8(&args);
    }
    if is("fig9") {
        fig9(&args);
    }
    if is("table3") {
        table3(&args);
    }
    if is("model") {
        model(&args);
    }
    if is("campaign") {
        campaign(&args);
    }
}
