//! `analyze` — run the full probenet analysis pipeline on a measurement
//! file.
//!
//! ```text
//! analyze <series.csv> [--mu-kbps N] [--json]
//! analyze --demo [--json]
//! ```
//!
//! The input is the CSV format written by `probenet_netdyn::to_csv` (and by
//! the `udp_echo` tooling). `--mu-kbps` supplies the bottleneck rate when
//! known; otherwise it is estimated from probe compression where possible.
//! `--demo` analyzes a freshly simulated INRIA–UMd run instead of a file.

use probenet_core::{full_report, render_report, PaperScenario};
use probenet_netdyn::{from_csv, ExperimentConfig};
use probenet_sim::SimDuration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let mu_bps = args
        .iter()
        .position(|a| a == "--mu-kbps")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<f64>().expect("--mu-kbps needs a number") * 1e3);
    let demo = args.iter().any(|a| a == "--demo");

    let series = if demo {
        let sc = PaperScenario::inria_umd(1993);
        let cfg = ExperimentConfig::paper(SimDuration::from_millis(20)).with_count(6000);
        eprintln!("analyzing a simulated 2-minute INRIA-UMd run at delta = 20 ms");
        sc.run(&cfg).series
    } else {
        let path = args
            .iter()
            .find(|a| {
                !a.starts_with("--")
                    && Some(a.as_str())
                        != args
                            .iter()
                            .position(|x| x == "--mu-kbps")
                            .and_then(|i| args.get(i + 1))
                            .map(|s| s.as_str())
            })
            .unwrap_or_else(|| {
                eprintln!("usage: analyze <series.csv> [--mu-kbps N] [--json] | analyze --demo");
                std::process::exit(2);
            });
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        from_csv(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(1);
        })
    };

    let report = full_report(&series, mu_bps);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serializable report")
        );
    } else {
        print!("{}", render_report(&report));
    }
}
