//! `ablation` — quantify the design choices DESIGN.md calls out.
//!
//! ```text
//! ablation [--study clock|buffer|batch|estimator|all]
//! ```
//!
//! Studies:
//! * `clock` — measurement-clock resolution vs. bottleneck-estimate
//!   accuracy (why the Figure-2 reading is quantization-limited).
//! * `buffer` — slot-limited vs. byte-limited bottleneck buffers: how the
//!   drop discipline reshapes the probe loss profile (byte-limited queues
//!   favor small probes, erasing the paper's small-δ loss signature).
//! * `batch` — cross-traffic batch size vs. loss burstiness (clp) and
//!   workload-peak visibility: the calibration tension behind the chosen
//!   mean batch.
//! * `estimator` — the paper's eq.-(6) workload estimator vs. ground truth
//!   as δ grows (why eq. 6 needs small δ).
//! * `closedloop` — open-loop vs closed-loop (window flow) background
//!   traffic at the bottleneck.
//! * `red` — drop-tail vs RED queue management at the bottleneck under the
//!   paper's (unresponsive) traffic mix: a negative result — RED presumes
//!   congestion-responsive senders.

use probenet_core::{analyze_losses, analyze_workload, PaperScenario, PhasePlot};
use probenet_netdyn::{ExperimentConfig, SimExperiment};
use probenet_sim::{BufferLimit, Direction, Path, SimDuration};
use probenet_traffic::{offered_bps, InternetMix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn heading(s: &str) {
    println!("\n=== ablation: {s} ===");
}

/// Clock resolution vs. bottleneck-estimate accuracy (δ = 50 ms runs).
fn clock_study() {
    heading("measurement clock resolution vs mu estimate (truth 128 kb/s)");
    println!(
        "{:>14} | {:>12} | {:>12} | {:>22}",
        "clock (ms)", "intercept", "mu estimate", "bounds (kb/s)"
    );
    for res_us in [0u64, 500, 1000, 3906, 10_000] {
        let sc = PaperScenario::inria_umd(1993);
        let cfg = ExperimentConfig::paper(SimDuration::from_millis(50))
            .with_count(4800)
            .with_clock(SimDuration::from_micros(res_us));
        let out = sc.run(&cfg);
        let plot = PhasePlot::from_series(&out.series);
        match plot.bottleneck_estimate(10) {
            Some(e) => println!(
                "{:>14.3} | {:>9.2} ms | {:>7.1} kb/s | [{:>8.1}, {:>8.1}]",
                res_us as f64 / 1e3,
                e.intercept_ms,
                e.mu_bps / 1e3,
                e.mu_lo_bps / 1e3,
                e.mu_hi_bps / 1e3
            ),
            None => println!("{:>14.3} | no line", res_us as f64 / 1e3),
        }
    }
    println!("reading: accuracy is clock-bound, not method-bound (0 ms is exact).");
}

/// Buffer discipline vs. loss profile at small and large δ.
fn buffer_study() {
    heading("bottleneck buffer discipline vs probe loss profile");
    println!(
        "{:>22} | {:>9} | {:>9} | {:>9}",
        "buffer", "ulp@8ms", "ulp@100ms", "clp@8ms"
    );
    // 22 slots vs the byte-equivalent when full of 512-B bulk packets.
    let disciplines: Vec<(&str, BufferLimit)> = vec![
        ("Packets(22)", BufferLimit::Packets(22)),
        ("Bytes(11264)", BufferLimit::Bytes(22 * 512)),
        ("Packets(64)", BufferLimit::Packets(64)),
        ("Unbounded", BufferLimit::Unbounded),
    ];
    for (name, limit) in disciplines {
        let mut results = Vec::new();
        let mut clp8 = 0.0;
        for delta_ms in [8u64, 100] {
            let mut path = Path::inria_umd_1992();
            let (b, _) = path.bottleneck();
            path.links[b].buffer = limit;
            let sc = PaperScenario {
                path,
                ..PaperScenario::inria_umd(1993)
            };
            let count = (120_000 / delta_ms) as usize;
            let cfg = ExperimentConfig::paper(SimDuration::from_millis(delta_ms)).with_count(count);
            let out = sc.run(&cfg);
            let loss = analyze_losses(&out.series);
            if delta_ms == 8 {
                clp8 = loss.clp.unwrap_or(0.0);
            }
            results.push(loss.ulp);
        }
        println!(
            "{:>22} | {:>9.3} | {:>9.3} | {:>9.3}",
            name, results[0], results[1], clp8
        );
    }
    println!(
        "reading: byte-limited drop-tail admits small probes preferentially,\n\
         flattening the small-delta loss signature the paper measured;\n\
         slot-limited queues (the era's routers) reproduce it."
    );
}

/// Cross-traffic batch size vs. clp and workload-peak visibility.
fn batch_study() {
    heading("cross-traffic bulk batch size vs loss burstiness and Fig-8 peaks");
    println!(
        "{:>11} | {:>9} | {:>9} | {:>14} | {:>12}",
        "mean batch", "ulp@20ms", "clp@20ms", "bulk peak?", "bulk bytes"
    );
    for mean_batch in [1.5f64, 3.0, 6.0, 12.0] {
        let sc = PaperScenario {
            mean_batch,
            ..PaperScenario::inria_umd(1993)
        };
        let cfg = ExperimentConfig::paper(SimDuration::from_millis(20))
            .with_count(9000)
            .with_clock(SimDuration::ZERO);
        let out = sc.run(&cfg);
        let loss = analyze_losses(&out.series);
        let wl = analyze_workload(&out.series, 128_000.0, 4096.0, 100.0);
        let bulk = wl.inferred_bulk_bytes();
        println!(
            "{:>11.1} | {:>9.3} | {:>9.3} | {:>14} | {:>12}",
            mean_batch,
            loss.ulp,
            loss.clp.unwrap_or(0.0),
            if bulk.is_some() {
                "detected"
            } else {
                "smeared"
            },
            bulk.map(|b| format!("{b:.0}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "reading: bigger batches lengthen overflow episodes (higher clp, as\n\
         the paper saw) but smear the single-FTP-packet peak; the calibrated\n\
         scenario sits at the crossover."
    );
}

/// Equation-(6) estimator bias vs δ.
fn estimator_study() {
    heading("eq.-(6) workload estimator vs ground truth across delta");
    println!(
        "{:>10} | {:>16} | {:>16} | {:>8}",
        "delta(ms)", "estimated (kb/s)", "offered (kb/s)", "ratio"
    );
    for delta_ms in [8u64, 20, 50, 100, 200, 500] {
        let sc = PaperScenario::inria_umd(1993);
        let (bidx, mu) = sc.bottleneck();
        let horizon = SimDuration::from_secs(120);
        let mut rng = StdRng::seed_from_u64(sc.seed);
        let arrivals = InternetMix::calibrated(mu, 0.62, 0.10, 3.0).generate(&mut rng, horizon);
        let offered = offered_bps(&arrivals, horizon);

        let cfg = ExperimentConfig::paper(SimDuration::from_millis(delta_ms))
            .with_count((120_000 / delta_ms) as usize)
            .with_clock(SimDuration::ZERO);
        let (series, _) = SimExperiment::new(cfg, sc.path.clone(), 99)
            .with_cross_traffic(bidx, Direction::Outbound, arrivals)
            .run();
        let est = probenet_core::workload_estimates(&series, mu as f64);
        // Mean workload per interval -> implied offered rate.
        let mean_bytes = est.iter().sum::<f64>() / est.len().max(1) as f64;
        let est_bps = mean_bytes * 8.0 / (delta_ms as f64 / 1e3);
        println!(
            "{:>10} | {:>16.1} | {:>16.1} | {:>8.2}",
            delta_ms,
            est_bps / 1e3,
            offered / 1e3,
            est_bps / offered
        );
    }
    println!(
        "reading: eq. (6) is exact while the buffer stays busy; as delta\n\
         grows the buffer empties within intervals and the estimator's\n\
         (mu*delta - P) clamp inflates it — the paper's own caveat that the\n\
         estimate is only trustworthy 'if delta is sufficiently small'."
    );
}

/// Open-loop (the paper's Internet mix) vs closed-loop (window flows)
/// background traffic at comparable bottleneck utilization.
fn closedloop_study() {
    use probenet_sim::{Engine, FlowClass, SimTime, WindowFlow};
    heading("open-loop mix vs closed-loop window transfers as background");
    println!(
        "{:>12} | {:>10} | {:>8} | {:>8} | {:>9} | {:>10}",
        "background", "bneck util", "ulp", "clp", "mean rtt", "probe drops"
    );
    let delta_ms = 20u64;
    let count = 6000usize;
    let path = Path::inria_umd_1992();
    let (bidx, spec) = path.bottleneck();
    let mu = spec.bandwidth_bps;

    // Open loop: the calibrated mix.
    {
        let sc = PaperScenario::inria_umd(1993);
        let cfg = ExperimentConfig::paper(SimDuration::from_millis(delta_ms))
            .with_count(count)
            .with_clock(SimDuration::ZERO);
        let out = sc.run(&cfg);
        let loss = analyze_losses(&out.series);
        let rtts = out.series.delivered_rtts_ms();
        println!(
            "{:>12} | {:>10.2} | {:>8.3} | {:>8.3} | {:>7.0}ms | {:>10}",
            "open-loop",
            out.bottleneck_utilization,
            loss.ulp,
            loss.clp.unwrap_or(0.0),
            rtts.iter().sum::<f64>() / rtts.len() as f64,
            out.probe_overflow_drops + out.probe_random_drops,
        );
    }
    // Closed loop: window transfers in both directions.
    for window in [4usize, 8, 16] {
        let mut engine = Engine::new(path.clone(), 1993);
        engine.add_window_flow(WindowFlow::fixed(512, 40, window, false), SimTime::ZERO);
        engine.add_window_flow(WindowFlow::fixed(512, 40, window / 2, true), SimTime::ZERO);
        for n in 0..count as u64 {
            engine.inject_probe(SimTime::from_millis(delta_ms * n), 72, n);
        }
        engine.run_until(SimTime::from_secs(delta_ms * count as u64 / 1000 + 10));
        let mut flags = vec![true; count];
        let mut rtts = Vec::new();
        for d in engine.probe_deliveries() {
            flags[d.seq as usize] = false;
            rtts.push(d.rtt().as_millis_f64());
        }
        let loss = probenet_core::analyze_loss_flags(&flags);
        let util = engine
            .port(bidx, Direction::Outbound)
            .stats
            .utilization(engine.now());
        let drops = engine
            .drops()
            .iter()
            .filter(|d| d.class == FlowClass::Probe)
            .count();
        println!(
            "{:>10}w{window:<2} | {:>10.2} | {:>8.3} | {:>8.3} | {:>7.0}ms | {:>10}",
            "closed",
            util,
            loss.ulp,
            loss.clp.unwrap_or(0.0),
            rtts.iter().sum::<f64>() / rtts.len().max(1) as f64,
            drops,
        );
        let _ = mu;
    }
    println!(
        "reading: closed-loop sources self-limit — they fill the pipe yet\n\
         cannot overflow a buffer larger than their window, so probe losses\n\
         stay at the random-loss floor while delay rides high and steady.\n\
         The open-loop mix produces the paper's loss regime; the 1992\n\
         transatlantic link carried far more flows than buffer slots, making\n\
         the aggregate effectively open-loop."
    );
}

/// Drop-tail vs RED at the bottleneck: loss burstiness across δ.
fn red_study() {
    use probenet_sim::QueuePolicy;
    heading("drop-tail vs RED at the bottleneck");
    println!(
        "{:>10} | {:>10} | {:>8} | {:>8} | {:>7} | {:>8}",
        "delta(ms)", "policy", "ulp", "clp", "plg", "random?"
    );
    for delta_ms in [8u64, 20, 50] {
        for red in [false, true] {
            let mut path = Path::inria_umd_1992();
            let (b, _) = path.bottleneck();
            if red {
                path.links[b].policy = QueuePolicy::red_for_capacity(22);
            }
            let sc = PaperScenario {
                path,
                ..PaperScenario::inria_umd(1993)
            };
            let cfg = ExperimentConfig::paper(SimDuration::from_millis(delta_ms))
                .with_count((120_000 / delta_ms) as usize);
            let out = sc.run(&cfg);
            let loss = analyze_losses(&out.series);
            println!(
                "{:>10} | {:>10} | {:>8.3} | {:>8.3} | {:>7.2} | {:>8}",
                delta_ms,
                if red { "RED" } else { "drop-tail" },
                loss.ulp,
                loss.clp.unwrap_or(0.0),
                loss.plg_measured.unwrap_or(1.0),
                loss.losses_look_random(0.01),
            );
        }
    }
    println!(
        "reading: with UNRESPONSIVE (open-loop) traffic RED only drops more and\n\
         earlier - losses rise and stay bursty, because the sources never back\n\
         off and the average queue camps above the thresholds. The celebrated\n\
         RED benefits presume congestion-responsive senders; the paper's 1992\n\
         bottleneck, carrying a largely open-loop aggregate, behaves like the\n\
         drop-tail rows.\n"
    );

    // The responsive arm: an AIMD transfer as the background instead.
    use probenet_sim::{Engine, FlowClass, SimTime, WindowFlow};
    println!("with an AIMD (congestion-responsive) background transfer instead:");
    println!(
        "{:>10} | {:>12} | {:>12} | {:>10}",
        "policy", "probe rtt", "xfer done", "drops"
    );
    for red in [false, true] {
        let mut path = Path::inria_umd_1992();
        let (b, _) = path.bottleneck();
        // Remove random loss to isolate queue-management effects.
        for l in &mut path.links {
            l.random_loss = 0.0;
        }
        if red {
            path.links[b].policy = probenet_sim::QueuePolicy::red_for_capacity(22);
        }
        let mut engine = Engine::new(path, 1993);
        engine.add_window_flow(WindowFlow::aimd(512, 40, 64, false), SimTime::ZERO);
        for n in 0..4000u64 {
            engine.inject_probe(SimTime::from_millis(20 * n), 72, n);
        }
        engine.run_until(SimTime::from_secs(90));
        let rtts: Vec<f64> = engine
            .probe_deliveries()
            .map(|d| d.rtt().as_millis_f64())
            .collect();
        let done = engine
            .deliveries()
            .iter()
            .filter(|d| d.class == FlowClass::Window)
            .count();
        println!(
            "{:>10} | {:>9.0} ms | {:>12} | {:>10}",
            if red { "RED" } else { "drop-tail" },
            rtts.iter().sum::<f64>() / rtts.len().max(1) as f64,
            done,
            engine.drops().len(),
        );
    }
    println!(
        "reading: against a responsive sender RED keeps the standing queue\n\
         short - probe delay falls at comparable transfer throughput. Both\n\
         halves together: AQM is a contract with the sender."
    );
}

fn main() {
    let study = std::env::args()
        .skip_while(|a| a != "--study")
        .nth(1)
        .unwrap_or_else(|| "all".to_string());
    let is = |n: &str| study == "all" || study == n;
    if is("clock") {
        clock_study();
    }
    if is("buffer") {
        buffer_study();
    }
    if is("batch") {
        batch_study();
    }
    if is("estimator") {
        estimator_study();
    }
    if is("closedloop") {
        closedloop_study();
    }
    if is("red") {
        red_study();
    }
}
