//! Microbenchmarks of the analysis pipeline: phase plots, workload
//! estimation, loss metrics, and the statistics substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use probenet_core::{analyze_losses, analyze_workload, PhasePlot};
use probenet_netdyn::{RttRecord, RttSeries};
use probenet_sim::SimDuration;
use probenet_stats::{autocorrelation, periodogram, ArModel, GammaFit};

/// A deterministic synthetic series large enough to exercise the hot paths.
fn synthetic_series(n: usize) -> RttSeries {
    let mut state = 12345u64;
    let mut rtt = 150.0f64;
    let records = (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            rtt = (0.9 * (rtt - 145.0) + 145.0 + 40.0 * (u - 0.3)).max(140.0);
            let lost = u < 0.08;
            RttRecord {
                seq: i as u64,
                sent_at: i as u64 * 20_000_000,
                echoed_at: None,
                rtt: if lost { None } else { Some((rtt * 1e6) as u64) },
            }
        })
        .collect();
    RttSeries::new(SimDuration::from_millis(20), 72, SimDuration::ZERO, records)
}

fn bench_phase(c: &mut Criterion) {
    let series = synthetic_series(50_000);
    c.bench_function("phase_plot_build_50k", |b| {
        b.iter(|| black_box(PhasePlot::from_series(&series)))
    });
    let plot = PhasePlot::from_series(&series);
    c.bench_function("bottleneck_estimate_50k", |b| {
        b.iter(|| black_box(plot.bottleneck_estimate(10)))
    });
}

fn bench_workload(c: &mut Criterion) {
    let series = synthetic_series(50_000);
    c.bench_function("workload_analysis_50k", |b| {
        b.iter(|| black_box(analyze_workload(&series, 128_000.0, 4096.0, 100.0)))
    });
}

fn bench_loss(c: &mut Criterion) {
    let series = synthetic_series(50_000);
    c.bench_function("loss_analysis_50k", |b| {
        b.iter(|| black_box(analyze_losses(&series)))
    });
}

fn bench_stats(c: &mut Criterion) {
    let xs: Vec<f64> = (0..65_536)
        .map(|i| (i as f64 * 0.01).sin() + (i as f64 * 0.003).cos() * 2.0)
        .collect();
    c.bench_function("periodogram_65536", |b| {
        b.iter(|| black_box(periodogram(&xs)))
    });
    c.bench_function("autocorrelation_65536_lag50", |b| {
        b.iter(|| black_box(autocorrelation(&xs, 50)))
    });
    c.bench_function("ar_fit_order8_65536", |b| {
        b.iter(|| black_box(ArModel::fit(&xs, 8)))
    });
    let positive: Vec<f64> = xs.iter().map(|x| x + 4.0).collect();
    c.bench_function("gamma_mle_65536", |b| {
        b.iter(|| black_box(GammaFit::mle(&positive)))
    });
}

criterion_group!(
    benches,
    bench_phase,
    bench_workload,
    bench_loss,
    bench_stats
);
criterion_main!(benches);
