//! One benchmark per paper artifact: each table and figure of the
//! evaluation, timed end to end (generation + analysis) at a reduced span
//! so `cargo bench` finishes quickly. The `repro` binary prints the same
//! artifacts at full length.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use probenet_bench::*;

const SPAN: u64 = 20; // seconds of probing per iteration
const SEED: u64 = 1993;

fn artifacts(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper_artifacts");
    g.sample_size(10);

    g.bench_function("table1_route_discovery", |b| {
        b.iter(|| black_box(table1_route()))
    });
    g.bench_function("table2_route_discovery", |b| {
        b.iter(|| black_box(table2_route()))
    });
    g.bench_function("fig1_time_series_delta50", |b| {
        b.iter(|| black_box(figure1_series(SPAN, SEED).loss_probability()))
    });
    g.bench_function("fig2_phase_plot_delta50", |b| {
        b.iter(|| {
            let (plot, _) = figure2_phase(SPAN, SEED);
            black_box(plot.bottleneck_estimate(10))
        })
    });
    g.bench_function("fig4_phase_plot_delta500", |b| {
        b.iter(|| black_box(figure4_phase(120, SEED).near_diagonal(10.0)))
    });
    g.bench_function("fig5_phase_plot_umd_pitt_delta8", |b| {
        b.iter(|| black_box(figure5_phase(SPAN, SEED).near_line(-8.0, 1.5)))
    });
    g.bench_function("fig6_phase_plot_umd_pitt_delta50", |b| {
        b.iter(|| black_box(figure6_phase(SPAN, SEED).near_diagonal(6.0)))
    });
    g.bench_function("fig8_workload_dist_delta20", |b| {
        b.iter(|| black_box(figure8_workload(SPAN, SEED).peaks.len()))
    });
    g.bench_function("fig9_workload_dist_delta100", |b| {
        b.iter(|| black_box(figure9_workload(120, SEED).peaks.len()))
    });
    g.bench_function("table3_delta_sweep", |b| {
        b.iter(|| black_box(table3_rows(SPAN, SEED)))
    });
    g.finish();
}

criterion_group!(benches, artifacts);
criterion_main!(benches);
