//! Microbenchmarks of the simulation substrate: event queue, engine
//! throughput, Lindley recurrence.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use probenet_netdyn::{ExperimentConfig, SimExperiment};
use probenet_queueing::{finite_queue, waiting_times};
use probenet_sim::{BinaryHeapQueue, Direction, Engine, EventQueue, Path, SimDuration, SimTime};
use probenet_traffic::InternetMix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..100_000u64 {
                // Pseudorandom but deterministic times.
                let t = (i.wrapping_mul(2_654_435_761)) % 1_000_000;
                q.schedule(SimTime::from_nanos(1_000_000_000 + t), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

/// 1M events in the engine's characteristic pattern: each popped event
/// schedules a couple of follow-ups — mostly time-local (transmission /
/// propagation scale), occasionally far ahead (pre-injected probe
/// schedules) — so the indexed queue's buckets, in-run splices and
/// overflow epochs all get exercised. Identical deterministic workload
/// for both queues; the `_indexed` vs `_binary_heap` ratio is the
/// data-structure speedup.
const MIXED_EVENTS: u64 = 1_000_000;

macro_rules! drive_mixed {
    ($queue:expr) => {{
        let mut q = $queue;
        // Seed the cascade with far-apart roots, as probe pre-injection does.
        for i in 0..1000u64 {
            q.schedule(SimTime::from_nanos(i * 120_000_000), i);
        }
        let mut scheduled = 1000u64;
        let mut acc = 0u64;
        while let Some((at, e)) = q.pop() {
            acc = acc.wrapping_add(e);
            if scheduled < MIXED_EVENTS {
                // Two time-local follow-ups (same/adjacent bucket)...
                let jitter = (e.wrapping_mul(2_654_435_761)) % 400_000;
                q.schedule(at + SimDuration::from_nanos(jitter), scheduled);
                q.schedule(
                    at + SimDuration::from_nanos(50_000 + jitter / 2),
                    scheduled + 1,
                );
                scheduled += 2;
                // ...and occasionally one far-future event (overflow epoch).
                if e % 64 == 0 {
                    q.schedule(
                        at + SimDuration::from_nanos(2_000_000_000 + jitter),
                        scheduled,
                    );
                    scheduled += 1;
                }
            }
        }
        black_box(acc)
    }};
}

fn bench_queue_shootout(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_1m_mixed");
    g.sample_size(10);
    g.bench_function("indexed", |b| b.iter(|| drive_mixed!(EventQueue::new())));
    g.bench_function("binary_heap", |b| {
        b.iter(|| drive_mixed!(BinaryHeapQueue::new()))
    });
    g.finish();
}

fn bench_engine_probes_only(c: &mut Criterion) {
    c.bench_function("engine_inria_umd_2000_probes_unloaded", |b| {
        b.iter(|| {
            let mut e = Engine::new(Path::inria_umd_1992(), 1);
            for n in 0..2000u64 {
                e.inject_probe(SimTime::from_millis(20 * n), 72, n);
            }
            e.run();
            black_box(e.probe_deliveries().count())
        })
    });
}

fn bench_engine_loaded(c: &mut Criterion) {
    let mix = InternetMix::calibrated(128_000, 0.6, 0.2, 3.0);
    let arrivals = mix.generate(&mut StdRng::seed_from_u64(7), SimDuration::from_secs(40));
    let (bottleneck, _) = Path::inria_umd_1992().bottleneck();
    c.bench_function("engine_inria_umd_2000_probes_loaded", |b| {
        b.iter(|| {
            let mut e = Engine::new(Path::inria_umd_1992(), 1);
            e.attach_cross_traffic(
                bottleneck,
                Direction::Outbound,
                arrivals.iter().map(|a| a.into_pair()),
            );
            for n in 0..2000u64 {
                e.inject_probe(SimTime::from_millis(20 * n), 72, n);
            }
            e.run();
            black_box(e.probe_deliveries().count())
        })
    });
}

fn bench_sim_experiment(c: &mut Criterion) {
    c.bench_function("sim_experiment_1000_probes", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig::quick(SimDuration::from_millis(20), 1000);
            let (series, _) = SimExperiment::new(cfg, Path::inria_umd_1992(), 3).run();
            black_box(series.received())
        })
    });
}

fn bench_lindley(c: &mut Criterion) {
    let n = 100_000;
    let gaps: Vec<f64> = (0..n - 1).map(|i| 0.5 + (i % 7) as f64 * 0.1).collect();
    let services: Vec<f64> = (0..n).map(|i| 0.4 + (i % 5) as f64 * 0.15).collect();
    c.bench_function("lindley_waiting_times_100k", |b| {
        b.iter(|| black_box(waiting_times(&gaps, &services, 0.0)))
    });

    let arrivals: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.6).collect();
    let svc: Vec<f64> = (0..10_000).map(|i| 0.5 + (i % 3) as f64 * 0.2).collect();
    c.bench_function("finite_queue_10k", |b| {
        b.iter(|| black_box(finite_queue(&arrivals, &svc, 16)))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_queue_shootout,
    bench_engine_probes_only,
    bench_engine_loaded,
    bench_sim_experiment,
    bench_lindley
);
criterion_main!(benches);
